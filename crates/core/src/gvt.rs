//! Global virtual time (GVT): the progress witness behind Theorem 2.
//!
//! Jefferson's Lemma 2 (as the paper cites it) says that under a group
//! number `g`, the earliest virtual time any node can ever again roll back
//! to — the *global virtual time* — eventually increases. Theorem 2 lifts
//! that to termination: given a finite set of external events, the
//! instrumented network keeps making progress through group numbers.
//!
//! This module makes both halves operational:
//!
//! * [`gvt_estimate`] computes the classic GVT lower bound: the minimum of
//!   the nodes' local virtual clocks (their current groups). A straggler or
//!   anti-message can only carry a group at or above the group its sender
//!   was in when it was emitted, so once every node has passed `g`, no new
//!   rollback can target groups more than the in-flight pipeline below `g`.
//! * [`GvtMonitor`] samples the estimate over a run and checks the Lemma-2
//!   witness: the bound never decreases and strictly increases across any
//!   sufficiently long window. It also tracks the *rollback floor* — the
//!   earliest uncommitted history entry — which shows how much state GC has
//!   actually released.
//! * [`fossil_collect`] commits every entry in groups the GVT has safely
//!   passed — Jefferson-style fossil collection, an alternative to the
//!   wall-clock commit horizon that needs no propagation-time estimate.
//!
//! The in-flight caveat: a message (or anti-message) still crossing a link
//! can carry a group slightly older than every node's clock suggests, and a
//! chain-bound overflow spills children one group forward. The `margin`
//! parameter absorbs both; with 250 ms beacons and ms-scale links, two
//! groups is already generous, and the tests drive heavy jitter and
//! failures against exactly this margin.

use crate::harness::RbNetwork;
use defined_obs as obs;
use netsim::{NodeId, SimTime};
use routing::ControlPlane;

/// Minimum of `f` over the nodes that can currently schedule a rollback:
/// up, and already joined virtual time (a just-restarted node whose clock
/// still reads 0 has an empty history and cannot roll anything back, so it
/// must not drag the bound to 0 while it waits for its first beacon).
/// Falls back to the minimum over *all* synced nodes' frozen clocks when no
/// such node exists — in an all-nodes-crashed window no new rollback can be
/// scheduled at all, so the frozen bound still holds; collapsing to 0 here
/// (the old `unwrap_or(0)`) regressed the monotone Lemma-2 witness and made
/// [`GvtMonitor`] report a spurious violation.
fn bound_over_nodes<P: ControlPlane + 'static>(
    net: &RbNetwork<P>,
    f: impl Fn(&crate::rb::RbShim<P>) -> u64,
) -> u64 {
    let synced = |i: usize| net.sim().process(NodeId(i as u32)).current_group() > 0;
    let over = |live: bool| {
        (0..net.sim().node_count())
            .filter(|&i| (!live || net.sim().node_up(NodeId(i as u32))) && synced(i))
            .map(|i| f(net.sim().process(NodeId(i as u32))))
            .min()
    };
    over(true).or_else(|| over(false)).unwrap_or(0)
}

/// The classic GVT lower bound, in groups: the minimum over *live* nodes of
/// the local virtual clock (current group).
///
/// Administratively-down nodes are excluded: their clocks froze at death,
/// but a dead node can never roll anything back, so it does not hold the
/// bound (its last in-flight messages are covered by the caller's margin).
/// When *no* node is up the bound does not collapse to 0 — it is the
/// minimum over the frozen clocks, since a fully crashed network schedules
/// no new rollbacks either.
pub fn gvt_estimate<P: ControlPlane + 'static>(net: &RbNetwork<P>) -> u64 {
    bound_over_nodes(net, |shim| shim.current_group())
}

/// The rollback floor, in groups: the minimum over live nodes of the
/// earliest *uncommitted* (still rollback-able) history entry. Everything
/// below it has been committed; the gap `gvt_estimate - rollback_floor` is
/// the state fossil collection can still release. Shares
/// [`gvt_estimate`]'s frozen-clock fallback for all-crashed windows.
pub fn rollback_floor<P: ControlPlane + 'static>(net: &RbNetwork<P>) -> u64 {
    bound_over_nodes(net, |shim| shim.earliest_live_group())
}

/// Commits every history entry in groups `<= gvt_estimate - margin` on all
/// nodes (fossil collection). Returns the commit cut that was applied, or
/// `None` when GVT has not yet cleared the margin.
///
/// # Examples
///
/// ```
/// use defined_core::gvt::{fossil_collect, gvt_estimate};
/// use defined_core::{DefinedConfig, RbNetwork};
/// use netsim::{NodeId, SimDuration, SimTime};
/// use routing::ospf::{OspfConfig, OspfProcess};
/// use topology::canonical;
///
/// let graph = canonical::ring(4, SimDuration::from_millis(4));
/// let mk = OspfProcess::for_graph(&graph, OspfConfig::stress(4));
/// let procs: Vec<OspfProcess> = (0..4).map(|i| mk(NodeId(i))).collect();
/// let mut net = RbNetwork::new(&graph, DefinedConfig::default(), 1, 0.4, move |id| {
///     procs[id.index()].clone()
/// });
/// net.run_until(SimTime::from_secs(3));
/// let gvt = gvt_estimate(&net);
/// assert!(gvt >= 8, "3 s of 250 ms beacons");
/// let cut = fossil_collect(&mut net, 2).expect("GVT cleared the margin");
/// assert_eq!(cut, gvt - 2);
/// ```
pub fn fossil_collect<P: ControlPlane + 'static>(
    net: &mut RbNetwork<P>,
    margin: u64,
) -> Option<u64> {
    let cut = gvt_estimate(net).checked_sub(margin)?;
    if cut == 0 {
        return None;
    }
    for i in 0..net.sim().node_count() {
        net.sim_mut().process_mut(NodeId(i as u32)).commit_through_group(cut);
    }
    obs::counter!("gvt.fossil_collections").add(1);
    obs::counter!("gvt.fossil_cut").set(cut);
    Some(cut)
}

/// One GVT observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GvtSample {
    /// Simulated time of the observation.
    pub at: SimTime,
    /// The GVT lower bound, in groups.
    pub gvt: u64,
    /// The rollback floor (earliest uncommitted group network-wide).
    pub floor: u64,
    /// Network-wide rollbacks observed so far — the churn signal the
    /// adaptive capture policy ([`crate::config::CapturePolicy::Auto`])
    /// reacts to per node.
    pub rollbacks: u64,
}

/// Collects GVT samples over a run and checks the Lemma-2 progress witness.
#[derive(Clone, Debug, Default)]
pub struct GvtMonitor {
    samples: Vec<GvtSample>,
}

impl GvtMonitor {
    /// An empty monitor.
    pub fn new() -> Self {
        GvtMonitor::default()
    }

    /// Records the current estimate and floor.
    ///
    /// While no live node has a running virtual clock — an all-crashed
    /// window, or the resync gap right after a mass restart before the
    /// first beacon — the previous bound is *held*: no node can schedule a
    /// rollback in such a window, so the last established bound remains
    /// valid, and holding it keeps the Lemma-2 witness monotone instead of
    /// reporting a spurious violation.
    pub fn observe<P: ControlPlane + 'static>(&mut self, net: &RbNetwork<P>) {
        let any_live_synced = (0..net.sim().node_count()).any(|i| {
            let id = NodeId(i as u32);
            net.sim().node_up(id) && net.sim().process(id).current_group() > 0
        });
        let mut gvt = gvt_estimate(net);
        let mut floor = rollback_floor(net);
        if !any_live_synced {
            if let Some(prev) = self.samples.last() {
                gvt = gvt.max(prev.gvt);
                floor = floor.max(prev.floor);
            }
        }
        match self.samples.first() {
            None => obs::counter!("gvt.bound_first").set(gvt),
            Some(first) => obs::counter!("gvt.bound_first").set(first.gvt),
        }
        if let Some(prev) = self.samples.last() {
            if gvt < prev.gvt {
                obs::counter!("gvt.regressions").add(1);
            }
            obs::counter!("gvt.advance").add(gvt.saturating_sub(prev.gvt));
        }
        obs::counter!("gvt.samples").add(1);
        obs::counter!("gvt.bound").set(gvt);
        obs::counter!("gvt.floor").set(floor);
        let rollbacks = net.total_metrics().rollbacks;
        obs::counter!("gvt.rollbacks").set(rollbacks);
        self.samples.push(GvtSample { at: net.sim().now(), gvt, floor, rollbacks });
    }

    /// Rollbacks per sample interval over the most recent `window` samples —
    /// the observed churn rate the adaptive capture interval responds to.
    pub fn recent_rollback_rate(&self, window: usize) -> f64 {
        let n = self.samples.len();
        if n < 2 || window == 0 {
            return 0.0;
        }
        let lo = n.saturating_sub(window + 1);
        let spans = (n - 1 - lo) as f64;
        let delta = self.samples[n - 1].rollbacks - self.samples[lo].rollbacks;
        delta as f64 / spans.max(1.0)
    }

    /// The samples collected so far.
    pub fn samples(&self) -> &[GvtSample] {
        &self.samples
    }

    /// Whether the GVT estimate never decreased across the samples.
    ///
    /// This is the safety half of the witness: local virtual clocks only
    /// move forward (ticks are delivered for strictly increasing numbers),
    /// so a decrease would be an implementation bug.
    pub fn is_monotone(&self) -> bool {
        self.samples.windows(2).all(|w| w[0].gvt <= w[1].gvt)
    }

    /// Whether the estimate strictly increased over every window of
    /// `window` consecutive samples — the liveness half of the witness
    /// (Lemma 2: GVT *eventually* increases).
    pub fn progresses_within(&self, window: usize) -> bool {
        if self.samples.len() <= window {
            return true;
        }
        self.samples
            .windows(window + 1)
            .all(|w| w[w.len() - 1].gvt > w[0].gvt)
    }

    /// Total GVT advance over the run, in groups.
    pub fn total_advance(&self) -> u64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => b.gvt.saturating_sub(a.gvt),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DefinedConfig;
    use netsim::SimDuration;
    use routing::ospf::{OspfConfig, OspfProcess};
    use topology::canonical;

    fn ring_net(seed: u64, jitter: f64) -> RbNetwork<OspfProcess> {
        let g = canonical::ring(5, SimDuration::from_millis(4));
        let cfg = DefinedConfig::default();
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(5));
        let spawn: Vec<OspfProcess> = (0..5).map(|i| f(NodeId(i))).collect();
        RbNetwork::new(&g, cfg, seed, jitter, move |id| spawn[id.index()].clone())
    }

    /// Lemma 2 witness: sampled every beacon interval under heavy jitter,
    /// the GVT bound is monotone and keeps advancing.
    #[test]
    fn gvt_is_monotone_and_advances() {
        let mut net = ring_net(3, 0.9);
        let mut mon = GvtMonitor::new();
        for tick in 1..=40u64 {
            net.run_until(SimTime::ZERO + SimDuration::from_millis(250) * tick);
            mon.observe(&net);
        }
        assert!(mon.is_monotone(), "GVT must never regress: {:?}", mon.samples());
        // One group per 250 ms beacon: over 10 s the bound must advance by
        // dozens of groups; allow slack for the pipeline depth.
        assert!(mon.total_advance() >= 25, "advance {}", mon.total_advance());
        // Liveness: within any 8 consecutive samples (2 s) GVT moved.
        assert!(mon.progresses_within(8));
        // Without any GC, the rollback floor stays pinned at the boot group
        // while GVT runs ahead — the gap is what fossil collection frees.
        let last = mon.samples().last().unwrap();
        assert!(last.floor <= 1, "no GC ran, floor {}", last.floor);
        assert!(last.gvt > last.floor + 20);
    }

    /// Fossil collection keeps histories bounded without a wall-clock
    /// horizon, and never triggers window violations.
    #[test]
    fn fossil_collection_bounds_history() {
        let mut net = ring_net(5, 0.7);
        let mut mon = GvtMonitor::new();
        let mut cuts = Vec::new();
        for tick in 1..=60u64 {
            net.run_until(SimTime::ZERO + SimDuration::from_millis(250) * tick);
            if let Some(cut) = fossil_collect(&mut net, 2) {
                cuts.push(cut);
            }
            mon.observe(&net);
        }
        assert!(!cuts.is_empty(), "fossil collection must engage");
        assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "cuts monotone");
        let m = net.total_metrics();
        assert_eq!(m.window_violations, 0, "margin 2 must be safe on a ring");
        for i in 0..5 {
            let len = net.sim().process(NodeId(i)).history_len();
            assert!(len < 250, "node {i} history {len} must stay bounded");
        }
        // The floor now tracks GVT at the margin.
        let last = mon.samples().last().unwrap();
        assert!(
            last.gvt.saturating_sub(last.floor) <= 4,
            "floor {} should track gvt {}",
            last.floor,
            last.gvt,
        );
    }

    /// GVT-committed executions remain deterministic across seeds: fossil
    /// collection only discards what can no longer change.
    #[test]
    fn fossil_collection_preserves_determinism() {
        let run = |seed| {
            let mut net = ring_net(seed, 0.6);
            for tick in 1..=32u64 {
                net.run_until(SimTime::ZERO + SimDuration::from_millis(250) * tick);
                fossil_collect(&mut net, 2);
            }
            let upto = net.completed_group(2);
            let logs = net.commit_logs();
            logs.into_iter()
                .map(|l| crate::recorder::trim_log(&l, upto))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(987));
    }

    /// Regression: with every node crashed, the GVT bound used to collapse
    /// to 0 (`min` over an empty live set, `unwrap_or(0)`), breaking the
    /// monotone witness. The bound must hold through an all-crashed window
    /// and the restart-resync gap that follows.
    #[test]
    fn gvt_holds_through_crash_all_then_restart() {
        let mut net = ring_net(7, 0.5);
        // Kill every node at 3 s; bring them all back at 4 s.
        for i in 0..5u32 {
            net.schedule_node(SimTime::from_millis(3000), NodeId(i), false);
            net.schedule_node(SimTime::from_millis(4000), NodeId(i), true);
        }
        let mut mon = GvtMonitor::new();
        let mut held = None;
        for tick in 1..=18u64 {
            // Sample every 250 ms through crash (t=3s) and restart (t=4s),
            // stopping before a post-restart election could reboot virtual
            // time from scratch.
            net.run_until(SimTime::ZERO + SimDuration::from_millis(250) * tick);
            mon.observe(&net);
            if tick == 12 {
                held = Some(mon.samples().last().unwrap().gvt);
            }
            if tick == 14 {
                // Mid-window, all nodes down: the raw estimate reports the
                // frozen-clock bound, not 0.
                assert!((0..5).all(|i| !net.sim().node_up(NodeId(i))));
                assert!(gvt_estimate(&net) > 0, "estimate collapsed to 0 mid-window");
            }
        }
        let held = held.expect("sampled at the crash instant");
        assert!(held >= 8, "3 s of 250 ms beacons ran before the crash: {held}");
        assert!(
            mon.is_monotone(),
            "GVT must not regress through an all-crashed window: {:?}",
            mon.samples()
        );
        // Every in-window and post-restart sample holds the bound.
        for s in &mon.samples()[12..] {
            assert_eq!(s.gvt, held, "bound not held at {}: {:?}", s.at, s);
        }
    }

    /// The stateless estimate itself reports the frozen-clock bound (not 0)
    /// while every node is down.
    #[test]
    fn estimate_uses_frozen_clocks_when_all_down() {
        let mut net = ring_net(3, 0.4);
        net.run_until(SimTime::from_secs(2));
        let before = gvt_estimate(&net);
        assert!(before >= 5);
        for i in 0..5u32 {
            net.schedule_node(SimTime::from_millis(2100), NodeId(i), false);
        }
        net.run_until(SimTime::from_millis(2500));
        assert!((0..5).all(|i| !net.sim().node_up(NodeId(i))), "all nodes down");
        let frozen = gvt_estimate(&net);
        assert!(frozen >= before, "frozen bound {frozen} regressed below {before}");
        assert!(rollback_floor(&net) > 0 || frozen == 0);
    }

    #[test]
    fn empty_monitor_is_trivially_healthy() {
        let mon = GvtMonitor::new();
        assert!(mon.is_monotone());
        assert!(mon.progresses_within(4));
        assert_eq!(mon.total_advance(), 0);
    }
}
