//! The interactive debugging front-end over DEFINED-LS (paper §2.1, §4).
//!
//! A human troubleshooter loads a production recording into a debugging
//! network, steps through events at chosen granularity, inspects and
//! manipulates node state, sets breakpoints on state predicates, and
//! validates patches in place — the workflow of both case studies.
//!
//! # Reverse execution
//!
//! With time travel enabled the debugger also steps *backward*:
//! [`Debugger::reverse_step`], [`Debugger::reverse_continue`], and
//! [`Debugger::goto`]. The engine takes a whole-network checkpoint
//! ([`crate::ls::LsImage`], stored page-diffed in a
//! [`checkpoint::Timeline`]) every `interval` delivered events; any
//! backward jump restores the nearest checkpoint at or before the target
//! and re-executes forward at most `interval` events. Because the lockstep
//! replay is deterministic (Theorem 1), the re-executed prefix — logs,
//! state, and transcript — is byte-identical to the original pass, so
//! rewind cost is O(checkpoint interval), not O(run length).

use crate::ls::{LockstepNet, LsEvent, LsImage};
use crate::recorder::CommitRecord;
use crate::wire::Wire;
use checkpoint::{MemStats, RetentionPolicy, Strategy, Timeline};
use netsim::NodeId;
use routing::ControlPlane;

/// Stepping granularity (§2.1: "steps may be chosen at various levels of
/// granularity").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepGranularity {
    /// One delivered event.
    Event,
    /// All events of one group (one full beacon interval).
    Group,
}

/// Outcome of a debugger step.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Events delivered during the step.
    pub events: Vec<LsEvent>,
    /// Group after the step.
    pub group: u64,
    /// True if a breakpoint fired during the step (stepping stopped there).
    pub hit_breakpoint: bool,
    /// Watches whose projected value changed during the step:
    /// `(watch label, old value, new value)`.
    pub watch_changes: Vec<(String, u64, u64)>,
}

type Predicate<P> = Box<dyn Fn(&LsEvent, &LockstepNet<P>) -> bool>;
type Projection<P> = Box<dyn Fn(&LockstepNet<P>) -> u64>;

struct Watch<P: ControlPlane> {
    label: String,
    project: Projection<P>,
    last: u64,
}

/// Why a time-travel request could not be satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeTravelError {
    /// Time travel was never enabled on this debugger.
    Disabled,
    /// The target position precedes the earliest retained checkpoint.
    BeforeHistory,
}

impl std::fmt::Display for TimeTravelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeTravelError::Disabled => write!(f, "time travel is not enabled"),
            TimeTravelError::BeforeHistory => {
                write!(f, "target precedes the earliest retained checkpoint")
            }
        }
    }
}

impl std::error::Error for TimeTravelError {}

/// The reverse-execution engine: a position-keyed checkpoint timeline plus
/// the cadence it is filled at.
struct TimeTravel<P: ControlPlane> {
    interval: u64,
    timeline: Timeline<LsImage<P>>,
    /// Events re-executed by the most recent backward jump (bounded by the
    /// retained checkpoint spacing — the O(interval) claim, observable).
    last_rewind_replayed: u64,
}

/// An interactive debugger session.
pub struct Debugger<P: ControlPlane> {
    net: LockstepNet<P>,
    breakpoints: Vec<Predicate<P>>,
    watches: Vec<Watch<P>>,
    delivered: u64,
    travel: Option<TimeTravel<P>>,
}

impl<P: ControlPlane> Debugger<P> {
    /// Wraps a loaded debugging network.
    pub fn new(net: LockstepNet<P>) -> Self {
        Debugger { net, breakpoints: Vec::new(), watches: Vec::new(), delivered: 0, travel: None }
    }

    /// The underlying lockstep network.
    pub fn net(&self) -> &LockstepNet<P> {
        &self.net
    }

    /// Total events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Registers a breakpoint; stepping stops after an event for which the
    /// predicate returns true.
    pub fn add_breakpoint(&mut self, pred: impl Fn(&LsEvent, &LockstepNet<P>) -> bool + 'static) {
        self.breakpoints.push(Box::new(pred));
    }

    /// Removes every registered breakpoint.
    pub fn clear_breakpoints(&mut self) {
        self.breakpoints.clear();
    }

    /// Registers a watch: `project` extracts a value (e.g. a route's next
    /// hop, a table digest) from the network; every step reports the
    /// watches whose value changed — a distributed watchpoint.
    pub fn add_watch(
        &mut self,
        label: impl Into<String>,
        project: impl Fn(&LockstepNet<P>) -> u64 + 'static,
    ) {
        let last = project(&self.net);
        self.watches.push(Watch { label: label.into(), project: Box::new(project), last });
    }

    /// Removes every registered watch.
    pub fn clear_watches(&mut self) {
        self.watches.clear();
    }

    fn poll_watches(&mut self) -> Vec<(String, u64, u64)> {
        let mut changes = Vec::new();
        for w in &mut self.watches {
            let now = (w.project)(&self.net);
            if now != w.last {
                changes.push((w.label.clone(), w.last, now));
                w.last = now;
            }
        }
        changes
    }

    /// Re-baselines every watch against the current state (after a
    /// navigation jump, so the next change report compares against the
    /// landed-on position, not the departed-from one).
    fn reprime_watches(&mut self) {
        for w in &mut self.watches {
            w.last = (w.project)(&self.net);
        }
    }

    /// Inspects a node's control-plane state.
    pub fn inspect(&self, node: NodeId) -> &P {
        self.net.control_plane(node)
    }

    /// Manipulates a node's state in place (e.g. applying a candidate patch
    /// before validating it, as in the case studies).
    pub fn patch(&mut self, node: NodeId, f: impl FnOnce(&mut P)) {
        f(self.net.control_plane_mut(node));
    }

    /// Steps once at the given granularity.
    ///
    /// Returns `None` when the recording is exhausted.
    pub fn step(&mut self, granularity: StepGranularity) -> Option<StepReport>
    where
        P::Msg: Wire,
        P::Ext: Wire,
    {
        match granularity {
            StepGranularity::Event => {
                let ev = self.advance()?;
                let hit = self.breakpoints.iter().any(|p| p(&ev, &self.net));
                let watch_changes = self.poll_watches();
                Some(StepReport {
                    group: self.net.current_group(),
                    events: vec![ev],
                    hit_breakpoint: hit,
                    watch_changes,
                })
            }
            StepGranularity::Group => {
                let start_group = self.net.current_group();
                let mut events = Vec::new();
                let mut hit = false;
                let mut watch_changes = Vec::new();
                loop {
                    if self.net.is_done() {
                        break;
                    }
                    // Stop before crossing into the next group.
                    let Some(ev) = self.advance() else { break };
                    let fired = self.breakpoints.iter().any(|p| p(&ev, &self.net));
                    let group_now = self.net.current_group();
                    events.push(ev);
                    watch_changes.extend(self.poll_watches());
                    if fired {
                        hit = true;
                        break;
                    }
                    if group_now > start_group.max(1) {
                        break;
                    }
                }
                if events.is_empty() {
                    None
                } else {
                    Some(StepReport {
                        group: self.net.current_group(),
                        events,
                        hit_breakpoint: hit,
                        watch_changes,
                    })
                }
            }
        }
    }

    /// Runs until any watch value changes or the recording ends; returns
    /// the triggering event and the changes.
    #[allow(clippy::type_complexity)]
    pub fn run_until_watch_change(&mut self) -> Option<(LsEvent, Vec<(String, u64, u64)>)>
    where
        P::Msg: Wire,
        P::Ext: Wire,
    {
        loop {
            let ev = self.advance()?;
            let changes = self.poll_watches();
            if !changes.is_empty() {
                return Some((ev, changes));
            }
        }
    }

    /// Runs until a breakpoint fires or the recording ends; returns the
    /// triggering event if any.
    pub fn run_until_break(&mut self) -> Option<LsEvent>
    where
        P::Msg: Wire,
        P::Ext: Wire,
    {
        loop {
            let ev = self.advance()?;
            if self.breakpoints.iter().any(|p| p(&ev, &self.net)) {
                return Some(ev);
            }
        }
    }

    /// Runs the rest of the recording; returns per-node logs.
    pub fn run_to_end(&mut self) -> Vec<Vec<CommitRecord>>
    where
        P::Msg: Wire,
        P::Ext: Wire,
    {
        while self.advance().is_some() {}
        self.net.logs().to_vec()
    }
}

/// Reverse execution. Requires [`Wire`] codecs for the protocol's message
/// and external payload types so in-flight messages checkpoint with the
/// rest of the network image.
impl<P> Debugger<P>
where
    P: ControlPlane,
    P::Msg: Wire,
    P::Ext: Wire,
{
    /// Enables time travel: a whole-network checkpoint every `interval`
    /// delivered events (plus one immediately, anchoring the reachable
    /// history at the current position), stored under `strategy` and
    /// thinned per `policy`.
    ///
    /// Smaller intervals rewind faster but checkpoint more often; see
    /// DESIGN.md §8 for the cadence/latency trade-off.
    pub fn enable_time_travel(
        &mut self,
        interval: u64,
        strategy: Strategy,
        policy: RetentionPolicy,
    ) {
        let mut timeline = Timeline::new(strategy, policy);
        timeline.record(self.delivered, &self.net.capture_image());
        self.travel =
            Some(TimeTravel { interval: interval.max(1), timeline, last_rewind_replayed: 0 });
    }

    /// Whether reverse execution is available.
    pub fn time_travel_enabled(&self) -> bool {
        self.travel.is_some()
    }

    /// The checkpoint cadence, when time travel is enabled.
    pub fn checkpoint_interval(&self) -> Option<u64> {
        self.travel.as_ref().map(|t| t.interval)
    }

    /// Events re-executed by the most recent backward jump — bounded by the
    /// retained checkpoint spacing, never by the run length.
    pub fn last_rewind_replayed(&self) -> u64 {
        self.travel.as_ref().map(|t| t.last_rewind_replayed).unwrap_or(0)
    }

    /// Memory statistics of the checkpoint timeline.
    pub fn timeline_stats(&self) -> Option<MemStats> {
        self.travel.as_ref().map(|t| t.timeline.stats())
    }

    /// Delivers one event and checkpoints when the cadence comes due.
    fn advance(&mut self) -> Option<LsEvent> {
        let ev = self.net.step_event()?;
        self.delivered += 1;
        if let Some(t) = &mut self.travel {
            if self.delivered.is_multiple_of(t.interval) && !t.timeline.contains(self.delivered) {
                t.timeline.record(self.delivered, &self.net.capture_image());
            }
        }
        Some(ev)
    }

    /// Jumps to `target` (an absolute delivered-event position), in either
    /// direction, and returns the position landed on.
    ///
    /// Forward jumps re-execute from here. Backward jumps restore the
    /// nearest checkpoint at or before `target` and re-execute forward —
    /// O(checkpoint interval) work. Navigation re-execution does not fire
    /// breakpoints or watch reports; watches are re-baselined at the
    /// landing position. A forward target past the end of the recording
    /// lands at the end.
    pub fn goto(&mut self, target: u64) -> Result<u64, TimeTravelError> {
        if target < self.delivered {
            let t = self.travel.as_mut().ok_or(TimeTravelError::Disabled)?;
            let (pos, img) =
                t.timeline.restore_at_or_before(target).ok_or(TimeTravelError::BeforeHistory)?;
            self.net.restore_image(img);
            self.delivered = pos;
            let mut replayed = 0u64;
            while self.delivered < target && self.advance().is_some() {
                replayed += 1;
            }
            if let Some(t) = &mut self.travel {
                t.last_rewind_replayed = replayed;
            }
        } else {
            while self.delivered < target && self.advance().is_some() {}
        }
        self.reprime_watches();
        Ok(self.delivered)
    }

    /// Steps `n` events backward (clamped at the earliest retained
    /// checkpoint's position); returns the position landed on.
    pub fn reverse_step(&mut self, n: u64) -> Result<u64, TimeTravelError> {
        match self.goto(self.delivered.saturating_sub(n)) {
            Err(TimeTravelError::BeforeHistory) => {
                // Clamp to the earliest reachable position instead of
                // failing: "step as far back as you can".
                let earliest = self
                    .travel
                    .as_ref()
                    .and_then(|t| t.timeline.positions().next())
                    .ok_or(TimeTravelError::Disabled)?;
                self.goto(earliest)
            }
            r => r,
        }
    }

    /// Runs *backward* to the most recent earlier event at which a
    /// breakpoint fired or a watch value changed (in either direction of
    /// the value), landing just after that event.
    ///
    /// Returns the triggering event and the watch changes observed at it,
    /// or `Ok(None)` after landing at the start of retained history with
    /// no hit. Scanning restores checkpoint segments and replays them
    /// forward, newest segment first, so the cost is proportional to the
    /// distance travelled, not the run length.
    #[allow(clippy::type_complexity)]
    pub fn reverse_continue(
        &mut self,
    ) -> Result<Option<(LsEvent, Vec<(String, u64, u64)>)>, TimeTravelError> {
        if self.travel.is_none() {
            return Err(TimeTravelError::Disabled);
        }
        let origin = self.delivered;
        let mut upper = origin;
        loop {
            let Some(before) = upper.checked_sub(1) else {
                // Scanned all the way down to position 0 with no hit; land
                // there (the scan itself left us at the top of the last
                // segment).
                self.goto(0)?;
                return Ok(None);
            };
            let seg = self
                .travel
                .as_mut()
                .expect("checked above")
                .timeline
                .restore_at_or_before(before);
            let Some((seg_start, img)) = seg else {
                // Everything at or below `upper` is out of retained
                // history; stay where the scan left us (== `upper`).
                self.goto(upper)?;
                return Ok(None);
            };
            self.net.restore_image(img);
            self.delivered = seg_start;
            self.reprime_watches();
            // Scan positions (seg_start, upper], recording the *last* hit
            // strictly before the origin.
            let mut hit: Option<(u64, LsEvent, Vec<(String, u64, u64)>)> = None;
            while self.delivered < upper {
                let Some(ev) = self.advance() else { break };
                let fired = self.breakpoints.iter().any(|p| p(&ev, &self.net));
                let changes = self.poll_watches();
                if (fired || !changes.is_empty()) && self.delivered < origin {
                    hit = Some((self.delivered, ev, changes));
                }
            }
            if let Some((pos, ev, changes)) = hit {
                self.goto(pos)?;
                return Ok(Some((ev, changes)));
            }
            upper = seg_start;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DefinedConfig;
    use crate::harness::RbNetwork;
    use crate::order::EventClass;
    use netsim::{SimDuration, SimTime};
    use routing::ospf::{OspfConfig, OspfProcess};
    use topology::canonical;

    fn session() -> Debugger<OspfProcess> {
        let g = canonical::ring(4, SimDuration::from_millis(4));
        let cfg = DefinedConfig::default();
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(4));
        let spawn: Vec<OspfProcess> = (0..4).map(|i| f(NodeId(i))).collect();
        let s2 = spawn.clone();
        let mut net = RbNetwork::new(&g, cfg.clone(), 6, 0.3, move |id| spawn[id.index()].clone());
        net.run_until(SimTime::from_secs(4));
        let (rec, _) = net.into_recording();
        Debugger::new(LockstepNet::new(&g, cfg, rec, move |id| s2[id.index()].clone()))
    }

    #[test]
    fn event_stepping_advances_one_at_a_time() {
        let mut dbg = session();
        let r1 = dbg.step(StepGranularity::Event).expect("first event");
        assert_eq!(r1.events.len(), 1);
        assert_eq!(dbg.delivered(), 1);
        let r2 = dbg.step(StepGranularity::Event).expect("second event");
        assert_eq!(r2.events.len(), 1);
        assert_eq!(dbg.delivered(), 2);
    }

    #[test]
    fn group_stepping_covers_whole_groups() {
        let mut dbg = session();
        let r = dbg.step(StepGranularity::Group).expect("group step");
        assert!(r.events.len() >= 4, "a group includes at least all beacon ticks");
        assert!(!r.hit_breakpoint);
    }

    #[test]
    fn breakpoints_stop_stepping() {
        let mut dbg = session();
        // Break on the first beacon tick of group 3.
        dbg.add_breakpoint(|ev, _| {
            ev.record.ann.class == EventClass::Beacon && ev.record.ann.group == 3
        });
        let hit = dbg.run_until_break().expect("breakpoint should fire");
        assert_eq!(hit.record.ann.group, 3);
        assert_eq!(hit.record.ann.class, EventClass::Beacon);
    }

    #[test]
    fn inspect_and_patch_state() {
        let mut dbg = session();
        // Run a while so adjacencies form.
        for _ in 0..60 {
            if dbg.step(StepGranularity::Event).is_none() {
                break;
            }
        }
        let before = dbg.inspect(NodeId(1)).up_neighbors().len();
        assert!(before > 0, "adjacency should have formed");
        // Patch does run against the live state.
        let mut seen = 0;
        dbg.patch(NodeId(1), |cp| {
            seen = cp.up_neighbors().len();
        });
        assert_eq!(seen, before);
    }

    #[test]
    fn watches_report_state_changes() {
        let mut dbg = session();
        // Watch node 1's adjacency count.
        dbg.add_watch("n1 adjacencies", |net| {
            net.control_plane(NodeId(1)).up_neighbors().len() as u64
        });
        let (ev, changes) = dbg.run_until_watch_change().expect("adjacency forms");
        assert_eq!(changes.len(), 1);
        let (label, old, new) = &changes[0];
        assert_eq!(label, "n1 adjacencies");
        assert!(new > old, "adjacency count grew: {old} -> {new}");
        // The triggering event is a delivery at node 1 — the state that
        // changed belongs to it.
        assert_eq!(ev.node, NodeId(1));
    }

    #[test]
    fn watches_are_quiet_when_state_is_stable() {
        let mut dbg = session();
        // A constant projection never fires.
        dbg.add_watch("constant", |_| 42);
        for _ in 0..30 {
            let Some(r) = dbg.step(StepGranularity::Event) else { break };
            assert!(r.watch_changes.is_empty());
        }
        dbg.clear_watches();
        assert!(dbg.run_until_watch_change().is_none());
    }

    #[test]
    fn run_to_end_consumes_everything() {
        let mut dbg = session();
        let logs = dbg.run_to_end();
        assert_eq!(logs.len(), 4);
        assert!(dbg.net().is_done());
        assert!(dbg.delivered() > 50);
        assert!(dbg.step(StepGranularity::Event).is_none());
    }

    fn travel_session(interval: u64) -> Debugger<OspfProcess> {
        let mut dbg = session();
        dbg.enable_time_travel(
            interval,
            checkpoint::Strategy::MemIntercept,
            checkpoint::RetentionPolicy::default(),
        );
        dbg
    }

    fn event_keys(r: &StepReport) -> Vec<(u64, u32, NodeId, u64)> {
        r.events
            .iter()
            .map(|e| (e.group, e.chain, e.node, e.record.payload_digest))
            .collect()
    }

    /// Forward → reverse → forward reproduces the same events (Theorem 1
    /// applied twice).
    #[test]
    fn reverse_step_then_forward_is_byte_identical() {
        let mut dbg = travel_session(8);
        let first: Vec<_> = (0..40)
            .map(|_| event_keys(&dbg.step(StepGranularity::Event).expect("events")))
            .collect();
        assert_eq!(dbg.reverse_step(25), Ok(15));
        assert!(
            dbg.last_rewind_replayed() < 8,
            "rewind replayed {} events, more than the interval",
            dbg.last_rewind_replayed()
        );
        let again: Vec<_> = (0..25)
            .map(|_| event_keys(&dbg.step(StepGranularity::Event).expect("events")))
            .collect();
        assert_eq!(again, first[15..], "re-executed events diverged");
        assert_eq!(dbg.delivered(), 40);
    }

    #[test]
    fn goto_jumps_both_directions_and_clamps_at_the_end() {
        let mut dbg = travel_session(16);
        let full = dbg.run_to_end();
        let end = dbg.delivered();
        assert_eq!(dbg.goto(0), Ok(0));
        assert!(dbg.net().logs().iter().all(|l| l.is_empty()), "goto 0 rewinds the logs");
        assert_eq!(dbg.goto(end + 1000), Ok(end), "past-the-end forward goto lands at the end");
        assert_eq!(dbg.run_to_end(), full, "round trip through position 0 diverged");
        // Backward jumps re-execute at most one checkpoint interval.
        assert_eq!(dbg.goto(end / 2), Ok(end / 2));
        assert!(dbg.last_rewind_replayed() < 16);
    }

    #[test]
    fn reverse_continue_finds_the_last_watch_change() {
        let mut dbg = travel_session(8);
        let adjacencies =
            |net: &LockstepNet<OspfProcess>| net.control_plane(NodeId(2)).up_neighbors().len() as u64;
        dbg.add_watch("n2 adjacencies", adjacencies);
        // Run forward long enough for the adjacency count to settle.
        for _ in 0..120 {
            if dbg.step(StepGranularity::Event).is_none() {
                break;
            }
        }
        let here = dbg.delivered();
        let (ev, changes) = dbg
            .reverse_continue()
            .expect("time travel on")
            .expect("adjacency changed somewhere behind us");
        assert!(dbg.delivered() < here);
        assert_eq!(ev.node, NodeId(2), "the change happened at the watched node");
        assert_eq!(changes.len(), 1);
        let stop_at = dbg.delivered();
        // The hit is the *most recent* change: re-running forward from just
        // after it up to `here` must not change the watch again.
        while dbg.delivered() < here {
            let r = dbg.step(StepGranularity::Event).expect("replayable");
            assert!(r.watch_changes.is_empty(), "a later change existed: {:?}", r.watch_changes);
        }
        // Reverse again from the stop position: the next hit (the same
        // value changing in the other direction of travel) is strictly
        // earlier.
        dbg.goto(stop_at).unwrap();
        if let Some(_hit) = dbg.reverse_continue().expect("enabled") {
            assert!(dbg.delivered() < stop_at);
        }
    }

    #[test]
    fn reverse_continue_respects_breakpoints() {
        let mut dbg = travel_session(8);
        dbg.run_to_end();
        let end = dbg.delivered();
        dbg.add_breakpoint(|ev, _| {
            ev.record.ann.class == EventClass::Beacon && ev.record.ann.group == 3
        });
        let (ev, changes) = dbg.reverse_continue().expect("enabled").expect("group 3 is behind");
        assert_eq!(ev.record.ann.group, 3);
        assert_eq!(ev.record.ann.class, EventClass::Beacon);
        assert!(changes.is_empty(), "no watches registered");
        assert!(dbg.delivered() < end);
        // It stopped at the *last* matching event: no later beacon of
        // group 3 exists between here and the end.
        let here = dbg.delivered();
        let later = dbg.run_until_break();
        assert!(later.is_none(), "found a later group-3 beacon after position {here}");
    }

    #[test]
    fn reverse_continue_without_hits_lands_at_history_start() {
        let mut dbg = travel_session(8);
        for _ in 0..30 {
            dbg.step(StepGranularity::Event);
        }
        // No breakpoints, no watches: scan the whole history, land at 0.
        assert_eq!(dbg.reverse_continue(), Ok(None));
        assert_eq!(dbg.delivered(), 0);
        // At position 0, reverse-continue is a no-op.
        assert_eq!(dbg.reverse_continue(), Ok(None));
        assert_eq!(dbg.delivered(), 0);
    }

    #[test]
    fn time_travel_disabled_errors() {
        let mut dbg = session();
        for _ in 0..10 {
            dbg.step(StepGranularity::Event);
        }
        assert_eq!(dbg.goto(2), Err(TimeTravelError::Disabled));
        assert_eq!(dbg.reverse_step(1), Err(TimeTravelError::Disabled));
        assert_eq!(dbg.reverse_continue(), Err(TimeTravelError::Disabled));
        assert!(dbg.timeline_stats().is_none());
        // Forward goto works without checkpoints.
        assert_eq!(dbg.goto(15), Ok(15));
    }

    #[test]
    fn late_enable_bounds_reachable_history() {
        let mut dbg = session();
        for _ in 0..20 {
            dbg.step(StepGranularity::Event);
        }
        dbg.enable_time_travel(
            8,
            checkpoint::Strategy::Fork,
            checkpoint::RetentionPolicy::default(),
        );
        for _ in 0..20 {
            dbg.step(StepGranularity::Event);
        }
        // Position 5 precedes the anchor (20): unreachable.
        assert_eq!(dbg.goto(5), Err(TimeTravelError::BeforeHistory));
        // reverse_step clamps at the anchor instead.
        assert_eq!(dbg.reverse_step(10_000), Ok(20));
    }

    #[test]
    fn watches_reprime_across_jumps() {
        let mut dbg = travel_session(8);
        dbg.add_watch("n1 state", |net| {
            crate::order::debug_digest(net.control_plane(NodeId(1)))
        });
        for _ in 0..60 {
            dbg.step(StepGranularity::Event);
        }
        // Jumping must not report the jump itself as a watch change: the
        // next step's report reflects only that step.
        dbg.reverse_step(30).unwrap();
        let r = dbg.step(StepGranularity::Event).expect("events");
        for (label, old, new) in &r.watch_changes {
            assert_ne!(old, new, "self-change reported for {label}");
        }
    }
}
