//! The interactive debugging front-end over DEFINED-LS (paper §2.1, §4).
//!
//! A human troubleshooter loads a production recording into a debugging
//! network, steps through events at chosen granularity, inspects and
//! manipulates node state, sets breakpoints on state predicates, and
//! validates patches in place — the workflow of both case studies.

use crate::ls::{LockstepNet, LsEvent};
use crate::recorder::CommitRecord;
use netsim::NodeId;
use routing::ControlPlane;

/// Stepping granularity (§2.1: "steps may be chosen at various levels of
/// granularity").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepGranularity {
    /// One delivered event.
    Event,
    /// All events of one group (one full beacon interval).
    Group,
}

/// Outcome of a debugger step.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Events delivered during the step.
    pub events: Vec<LsEvent>,
    /// Group after the step.
    pub group: u64,
    /// True if a breakpoint fired during the step (stepping stopped there).
    pub hit_breakpoint: bool,
    /// Watches whose projected value changed during the step:
    /// `(watch label, old value, new value)`.
    pub watch_changes: Vec<(String, u64, u64)>,
}

type Predicate<P> = Box<dyn Fn(&LsEvent, &LockstepNet<P>) -> bool>;
type Projection<P> = Box<dyn Fn(&LockstepNet<P>) -> u64>;

struct Watch<P: ControlPlane> {
    label: String,
    project: Projection<P>,
    last: u64,
}

/// An interactive debugger session.
pub struct Debugger<P: ControlPlane> {
    net: LockstepNet<P>,
    breakpoints: Vec<Predicate<P>>,
    watches: Vec<Watch<P>>,
    delivered: u64,
}

impl<P: ControlPlane> Debugger<P> {
    /// Wraps a loaded debugging network.
    pub fn new(net: LockstepNet<P>) -> Self {
        Debugger { net, breakpoints: Vec::new(), watches: Vec::new(), delivered: 0 }
    }

    /// The underlying lockstep network.
    pub fn net(&self) -> &LockstepNet<P> {
        &self.net
    }

    /// Total events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Registers a breakpoint; stepping stops after an event for which the
    /// predicate returns true.
    pub fn add_breakpoint(&mut self, pred: impl Fn(&LsEvent, &LockstepNet<P>) -> bool + 'static) {
        self.breakpoints.push(Box::new(pred));
    }

    /// Removes every registered breakpoint.
    pub fn clear_breakpoints(&mut self) {
        self.breakpoints.clear();
    }

    /// Registers a watch: `project` extracts a value (e.g. a route's next
    /// hop, a table digest) from the network; every step reports the
    /// watches whose value changed — a distributed watchpoint.
    pub fn add_watch(
        &mut self,
        label: impl Into<String>,
        project: impl Fn(&LockstepNet<P>) -> u64 + 'static,
    ) {
        let last = project(&self.net);
        self.watches.push(Watch { label: label.into(), project: Box::new(project), last });
    }

    /// Removes every registered watch.
    pub fn clear_watches(&mut self) {
        self.watches.clear();
    }

    fn poll_watches(&mut self) -> Vec<(String, u64, u64)> {
        let mut changes = Vec::new();
        for w in &mut self.watches {
            let now = (w.project)(&self.net);
            if now != w.last {
                changes.push((w.label.clone(), w.last, now));
                w.last = now;
            }
        }
        changes
    }

    /// Inspects a node's control-plane state.
    pub fn inspect(&self, node: NodeId) -> &P {
        self.net.control_plane(node)
    }

    /// Manipulates a node's state in place (e.g. applying a candidate patch
    /// before validating it, as in the case studies).
    pub fn patch(&mut self, node: NodeId, f: impl FnOnce(&mut P)) {
        f(self.net.control_plane_mut(node));
    }

    /// Steps once at the given granularity.
    ///
    /// Returns `None` when the recording is exhausted.
    pub fn step(&mut self, granularity: StepGranularity) -> Option<StepReport> {
        match granularity {
            StepGranularity::Event => {
                let ev = self.net.step_event()?;
                self.delivered += 1;
                let hit = self.breakpoints.iter().any(|p| p(&ev, &self.net));
                let watch_changes = self.poll_watches();
                Some(StepReport {
                    group: self.net.current_group(),
                    events: vec![ev],
                    hit_breakpoint: hit,
                    watch_changes,
                })
            }
            StepGranularity::Group => {
                let start_group = self.net.current_group();
                let mut events = Vec::new();
                let mut hit = false;
                let mut watch_changes = Vec::new();
                loop {
                    if self.net.is_done() {
                        break;
                    }
                    // Stop before crossing into the next group.
                    let Some(ev) = self.net.step_event() else { break };
                    self.delivered += 1;
                    let fired = self.breakpoints.iter().any(|p| p(&ev, &self.net));
                    let group_now = self.net.current_group();
                    events.push(ev);
                    watch_changes.extend(self.poll_watches());
                    if fired {
                        hit = true;
                        break;
                    }
                    if group_now > start_group.max(1) {
                        break;
                    }
                }
                if events.is_empty() {
                    None
                } else {
                    Some(StepReport {
                        group: self.net.current_group(),
                        events,
                        hit_breakpoint: hit,
                        watch_changes,
                    })
                }
            }
        }
    }

    /// Runs until any watch value changes or the recording ends; returns
    /// the triggering event and the changes.
    #[allow(clippy::type_complexity)]
    pub fn run_until_watch_change(&mut self) -> Option<(LsEvent, Vec<(String, u64, u64)>)> {
        loop {
            let ev = self.net.step_event()?;
            self.delivered += 1;
            let changes = self.poll_watches();
            if !changes.is_empty() {
                return Some((ev, changes));
            }
        }
    }

    /// Runs until a breakpoint fires or the recording ends; returns the
    /// triggering event if any.
    pub fn run_until_break(&mut self) -> Option<LsEvent> {
        loop {
            let ev = self.net.step_event()?;
            self.delivered += 1;
            if self.breakpoints.iter().any(|p| p(&ev, &self.net)) {
                return Some(ev);
            }
        }
    }

    /// Runs the rest of the recording; returns per-node logs.
    pub fn run_to_end(&mut self) -> Vec<Vec<CommitRecord>> {
        while self.net.step_event().is_some() {
            self.delivered += 1;
        }
        self.net.logs().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DefinedConfig;
    use crate::harness::RbNetwork;
    use crate::order::EventClass;
    use netsim::{SimDuration, SimTime};
    use routing::ospf::{OspfConfig, OspfProcess};
    use topology::canonical;

    fn session() -> Debugger<OspfProcess> {
        let g = canonical::ring(4, SimDuration::from_millis(4));
        let cfg = DefinedConfig::default();
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(4));
        let spawn: Vec<OspfProcess> = (0..4).map(|i| f(NodeId(i))).collect();
        let s2 = spawn.clone();
        let mut net = RbNetwork::new(&g, cfg.clone(), 6, 0.3, move |id| spawn[id.index()].clone());
        net.run_until(SimTime::from_secs(4));
        let (rec, _) = net.into_recording();
        Debugger::new(LockstepNet::new(&g, cfg, rec, move |id| s2[id.index()].clone()))
    }

    #[test]
    fn event_stepping_advances_one_at_a_time() {
        let mut dbg = session();
        let r1 = dbg.step(StepGranularity::Event).expect("first event");
        assert_eq!(r1.events.len(), 1);
        assert_eq!(dbg.delivered(), 1);
        let r2 = dbg.step(StepGranularity::Event).expect("second event");
        assert_eq!(r2.events.len(), 1);
        assert_eq!(dbg.delivered(), 2);
    }

    #[test]
    fn group_stepping_covers_whole_groups() {
        let mut dbg = session();
        let r = dbg.step(StepGranularity::Group).expect("group step");
        assert!(r.events.len() >= 4, "a group includes at least all beacon ticks");
        assert!(!r.hit_breakpoint);
    }

    #[test]
    fn breakpoints_stop_stepping() {
        let mut dbg = session();
        // Break on the first beacon tick of group 3.
        dbg.add_breakpoint(|ev, _| {
            ev.record.ann.class == EventClass::Beacon && ev.record.ann.group == 3
        });
        let hit = dbg.run_until_break().expect("breakpoint should fire");
        assert_eq!(hit.record.ann.group, 3);
        assert_eq!(hit.record.ann.class, EventClass::Beacon);
    }

    #[test]
    fn inspect_and_patch_state() {
        let mut dbg = session();
        // Run a while so adjacencies form.
        for _ in 0..60 {
            if dbg.step(StepGranularity::Event).is_none() {
                break;
            }
        }
        let before = dbg.inspect(NodeId(1)).up_neighbors().len();
        assert!(before > 0, "adjacency should have formed");
        // Patch does run against the live state.
        let mut seen = 0;
        dbg.patch(NodeId(1), |cp| {
            seen = cp.up_neighbors().len();
        });
        assert_eq!(seen, before);
    }

    #[test]
    fn watches_report_state_changes() {
        let mut dbg = session();
        // Watch node 1's adjacency count.
        dbg.add_watch("n1 adjacencies", |net| {
            net.control_plane(NodeId(1)).up_neighbors().len() as u64
        });
        let (ev, changes) = dbg.run_until_watch_change().expect("adjacency forms");
        assert_eq!(changes.len(), 1);
        let (label, old, new) = &changes[0];
        assert_eq!(label, "n1 adjacencies");
        assert!(new > old, "adjacency count grew: {old} -> {new}");
        // The triggering event is a delivery at node 1 — the state that
        // changed belongs to it.
        assert_eq!(ev.node, NodeId(1));
    }

    #[test]
    fn watches_are_quiet_when_state_is_stable() {
        let mut dbg = session();
        // A constant projection never fires.
        dbg.add_watch("constant", |_| 42);
        for _ in 0..30 {
            let Some(r) = dbg.step(StepGranularity::Event) else { break };
            assert!(r.watch_changes.is_empty());
        }
        dbg.clear_watches();
        assert!(dbg.run_until_watch_change().is_none());
    }

    #[test]
    fn run_to_end_consumes_everything() {
        let mut dbg = session();
        let logs = dbg.run_to_end();
        assert_eq!(logs.len(), 4);
        assert!(dbg.net().is_done());
        assert!(dbg.delivered() > 50);
        assert!(dbg.step(StepGranularity::Event).is_none());
    }
}
