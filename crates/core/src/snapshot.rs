//! The composite per-node state DEFINED-RB checkpoints.
//!
//! A rollback must restore not just the control-plane state but also the
//! shim-local context that deliveries mutate: the virtual-time group, the
//! origin-sequence counter, and the timer wheel. Wrapping them in one
//! [`NodeSnapshot`] keeps checkpoint/restore atomic.

use checkpoint::Snapshotable;
use routing::enc::{put_u64, Reader};
use routing::{ControlPlane, TimerToken};
use std::collections::BTreeMap;

/// Everything a rollback restores on one node.
#[derive(Clone, Debug)]
pub struct NodeSnapshot<P> {
    /// The wrapped control plane.
    pub cp: P,
    /// Virtual time = last beacon group processed.
    pub current_group: u64,
    /// The `sᵢ` counter for locally originated chains.
    pub origin_seq: u64,
    /// Deterministic arm-order counter for the timer wheel.
    pub arm_seq: u64,
    /// Timer wheel: `(fire_group, arm_seq) → token`.
    pub wheel: BTreeMap<(u64, u64), TimerToken>,
    /// Reverse index: armed token → wheel slot.
    pub armed: BTreeMap<TimerToken, (u64, u64)>,
}

impl<P: ControlPlane> NodeSnapshot<P> {
    /// A fresh snapshot around a just-constructed control plane.
    pub fn new(cp: P) -> Self {
        NodeSnapshot {
            cp,
            current_group: 0,
            origin_seq: 0,
            arm_seq: 0,
            wheel: BTreeMap::new(),
            armed: BTreeMap::new(),
        }
    }

    /// Applies an outbox's timer operations to the wheel (arms replace
    /// previous instances of the same token; cancels are idempotent).
    pub fn apply_timer_ops(&mut self, arms: &[(TimerToken, u64)], cancels: &[TimerToken]) {
        for token in cancels {
            if let Some(slot) = self.armed.remove(token) {
                self.wheel.remove(&slot);
            }
        }
        for &(token, ticks) in arms {
            if let Some(slot) = self.armed.remove(&token) {
                self.wheel.remove(&slot);
            }
            let slot = (self.current_group + ticks, self.arm_seq);
            self.arm_seq += 1;
            self.wheel.insert(slot, token);
            self.armed.insert(token, slot);
        }
    }

    /// Removes and returns all timers due at or before `group`, in
    /// deterministic `(fire_group, arm_seq)` order.
    pub fn take_due_timers(&mut self, group: u64) -> Vec<TimerToken> {
        let mut due = Vec::new();
        while let Some((&slot, &token)) = self.wheel.iter().next() {
            if slot.0 > group {
                break;
            }
            self.wheel.remove(&slot);
            self.armed.remove(&token);
            due.push(token);
        }
        due
    }
}

impl<P: ControlPlane> Snapshotable for NodeSnapshot<P> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.cp.encode(buf);
        put_u64(buf, self.current_group);
        put_u64(buf, self.origin_seq);
        put_u64(buf, self.arm_seq);
        put_u64(buf, self.wheel.len() as u64);
        for (&(g, s), &t) in &self.wheel {
            put_u64(buf, g);
            put_u64(buf, s);
            put_u64(buf, t.0);
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        // The control plane encodes first and is self-delimiting; decode it
        // by trial length. Rather than guess, re-encode to find the split.
        // The probe is pure scratch — restores run hot under rollback, so
        // it comes from the buffer pool rather than a fresh allocation.
        let cp = P::decode(bytes)?;
        let split = crate::bufpool::with_buf(|probe| {
            cp.encode(probe);
            probe.len()
        });
        let rest = bytes.get(split..)?;
        let mut r = Reader::new(rest);
        let current_group = r.u64()?;
        let origin_seq = r.u64()?;
        let arm_seq = r.u64()?;
        let n = r.len()?;
        let mut wheel = BTreeMap::new();
        let mut armed = BTreeMap::new();
        for _ in 0..n {
            let g = r.u64()?;
            let s = r.u64()?;
            let t = TimerToken(r.u64()?);
            wheel.insert((g, s), t);
            armed.insert(t, (g, s));
        }
        Some(NodeSnapshot { cp, current_group, origin_seq, arm_seq, wheel, armed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::NodeId;
    use routing::rip::{RefreshMode, RipConfig, RipProcess};

    fn snap() -> NodeSnapshot<RipProcess> {
        let cp = RipProcess::new(
            NodeId(0),
            vec![NodeId(1)],
            RipConfig::emulation(RefreshMode::DestinationAndNextHop),
        );
        NodeSnapshot::new(cp)
    }

    #[test]
    fn arm_and_fire_in_order() {
        let mut s = snap();
        s.current_group = 10;
        s.apply_timer_ops(&[(TimerToken(1), 2), (TimerToken(2), 1), (TimerToken(3), 2)], &[]);
        assert!(s.take_due_timers(10).is_empty());
        assert_eq!(s.take_due_timers(11), vec![TimerToken(2)]);
        // Equal fire groups resolve by arm order.
        assert_eq!(s.take_due_timers(12), vec![TimerToken(1), TimerToken(3)]);
        assert!(s.wheel.is_empty());
    }

    #[test]
    fn rearm_replaces() {
        let mut s = snap();
        s.apply_timer_ops(&[(TimerToken(7), 5)], &[]);
        s.apply_timer_ops(&[(TimerToken(7), 1)], &[]);
        assert_eq!(s.wheel.len(), 1);
        assert_eq!(s.take_due_timers(1), vec![TimerToken(7)]);
    }

    #[test]
    fn cancel_removes() {
        let mut s = snap();
        s.apply_timer_ops(&[(TimerToken(7), 5)], &[]);
        s.apply_timer_ops(&[], &[TimerToken(7)]);
        assert!(s.take_due_timers(100).is_empty());
        // Cancelling an unarmed token is a no-op.
        s.apply_timer_ops(&[], &[TimerToken(9)]);
    }

    #[test]
    fn snapshot_round_trip() {
        let mut s = snap();
        s.current_group = 3;
        s.origin_seq = 9;
        s.apply_timer_ops(&[(TimerToken(1), 4), (TimerToken(2), 8)], &[]);
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let back: NodeSnapshot<RipProcess> = Snapshotable::decode(&buf).expect("decodes");
        assert_eq!(back.current_group, 3);
        assert_eq!(back.origin_seq, 9);
        assert_eq!(back.wheel, s.wheel);
        assert_eq!(back.armed, s.armed);
        assert_eq!(back.digest(), s.digest());
    }
}
