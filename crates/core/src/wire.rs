//! Wire codec for recording payloads.
//!
//! Recordings must survive serialisation so a debugging session can load a
//! production recording from disk. The [`Wire`] trait is the minimal codec
//! contract; implementations are provided for the protocol external-input
//! types used in the case studies.

use netsim::NodeId;
use routing::enc::{put_u16, put_u32, put_u64, put_u8, Reader};
use routing::{bgp, rip};

/// A self-delimiting binary codec.
pub trait Wire: Sized {
    /// Appends the encoded value.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes a value, advancing the reader.
    fn decode(r: &mut Reader<'_>) -> Option<Self>;
}

impl Wire for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_r: &mut Reader<'_>) -> Option<Self> {
        Some(())
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, *self);
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        r.u64()
    }
}

impl Wire for bgp::PathAttrs {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.route_id);
        put_u8(buf, self.as_path_len);
        put_u16(buf, self.neighbor_as);
        put_u32(buf, self.med);
        put_u32(buf, self.igp_dist);
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(bgp::PathAttrs {
            route_id: r.u32()?,
            as_path_len: r.u8()?,
            neighbor_as: r.u16()?,
            med: r.u32()?,
            igp_dist: r.u32()?,
        })
    }
}

impl Wire for bgp::BgpExt {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            bgp::BgpExt::Announce { prefix, attrs } => {
                put_u8(buf, 0);
                put_u32(buf, *prefix);
                attrs.encode(buf);
            }
            bgp::BgpExt::Withdraw { prefix, route_id } => {
                put_u8(buf, 1);
                put_u32(buf, *prefix);
                put_u32(buf, *route_id);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match r.u8()? {
            0 => Some(bgp::BgpExt::Announce {
                prefix: r.u32()?,
                attrs: bgp::PathAttrs::decode(r)?,
            }),
            1 => Some(bgp::BgpExt::Withdraw { prefix: r.u32()?, route_id: r.u32()? }),
            _ => None,
        }
    }
}

impl Wire for rip::RipExt {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            rip::RipExt::Connect { prefix } => put_u32(buf, *prefix),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(rip::RipExt::Connect { prefix: r.u32()? })
    }
}

impl Wire for NodeId {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(NodeId(r.u32()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(T::decode(&mut r), Some(v));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn primitives() {
        round_trip(());
        round_trip(77u64);
        round_trip(NodeId(12));
    }

    #[test]
    fn bgp_externals() {
        let attrs = bgp::PathAttrs {
            route_id: 1,
            as_path_len: 3,
            neighbor_as: 100,
            med: 10,
            igp_dist: 10,
        };
        round_trip(bgp::BgpExt::Announce { prefix: 9, attrs });
        round_trip(bgp::BgpExt::Withdraw { prefix: 9, route_id: 4 });
    }

    #[test]
    fn rip_externals() {
        round_trip(rip::RipExt::Connect { prefix: 5 });
    }

    #[test]
    fn corrupt_input_fails_cleanly() {
        let mut r = Reader::new(&[2]);
        assert!(bgp::BgpExt::decode(&mut r).is_none());
    }
}
