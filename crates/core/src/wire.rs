//! Wire codec for recording payloads.
//!
//! Recordings must survive serialisation so a debugging session can load a
//! production recording from disk. The [`Wire`] trait is the minimal codec
//! contract; implementations are provided for the protocol external-input
//! types used in the case studies, and for the protocol *message* types so
//! a whole debugging network — including its in-flight messages — can be
//! checkpointed through the page-diff snapshot store (reverse execution).

use netsim::NodeId;
use routing::enc::{put_u16, put_u32, put_u64, put_u8, Reader};
use routing::{bgp, ospf, rip};

/// A self-delimiting binary codec.
pub trait Wire: Sized {
    /// Appends the encoded value.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes a value, advancing the reader.
    fn decode(r: &mut Reader<'_>) -> Option<Self>;
}

impl Wire for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_r: &mut Reader<'_>) -> Option<Self> {
        Some(())
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, *self);
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        r.u64()
    }
}

impl Wire for bgp::PathAttrs {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.route_id);
        put_u8(buf, self.as_path_len);
        put_u16(buf, self.neighbor_as);
        put_u32(buf, self.med);
        put_u32(buf, self.igp_dist);
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(bgp::PathAttrs {
            route_id: r.u32()?,
            as_path_len: r.u8()?,
            neighbor_as: r.u16()?,
            med: r.u32()?,
            igp_dist: r.u32()?,
        })
    }
}

impl Wire for bgp::BgpExt {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            bgp::BgpExt::Announce { prefix, attrs } => {
                put_u8(buf, 0);
                put_u32(buf, *prefix);
                attrs.encode(buf);
            }
            bgp::BgpExt::Withdraw { prefix, route_id } => {
                put_u8(buf, 1);
                put_u32(buf, *prefix);
                put_u32(buf, *route_id);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match r.u8()? {
            0 => Some(bgp::BgpExt::Announce {
                prefix: r.u32()?,
                attrs: bgp::PathAttrs::decode(r)?,
            }),
            1 => Some(bgp::BgpExt::Withdraw { prefix: r.u32()?, route_id: r.u32()? }),
            _ => None,
        }
    }
}

impl Wire for rip::RipExt {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            rip::RipExt::Connect { prefix } => put_u32(buf, *prefix),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(rip::RipExt::Connect { prefix: r.u32()? })
    }
}

impl Wire for NodeId {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(NodeId(r.u32()?))
    }
}

impl Wire for ospf::Lsa {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.origin.0);
        put_u64(buf, self.seq);
        put_u64(buf, self.links.len() as u64);
        for &(peer, cost) in &self.links {
            put_u32(buf, peer.0);
            put_u64(buf, cost);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let origin = NodeId(r.u32()?);
        let seq = r.u64()?;
        let n = r.len()?;
        let mut links = Vec::with_capacity(n);
        for _ in 0..n {
            links.push((NodeId(r.u32()?), r.u64()?));
        }
        Some(ospf::Lsa { origin, seq, links })
    }
}

impl Wire for ospf::OspfMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ospf::OspfMsg::Hello => put_u8(buf, 0),
            ospf::OspfMsg::Lsa(lsa) => {
                put_u8(buf, 1);
                lsa.encode(buf);
            }
            ospf::OspfMsg::Ack { origin, seq } => {
                put_u8(buf, 2);
                put_u32(buf, origin.0);
                put_u64(buf, *seq);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match r.u8()? {
            0 => Some(ospf::OspfMsg::Hello),
            1 => Some(ospf::OspfMsg::Lsa(ospf::Lsa::decode(r)?)),
            2 => Some(ospf::OspfMsg::Ack { origin: NodeId(r.u32()?), seq: r.u64()? }),
            _ => None,
        }
    }
}

impl Wire for rip::RipAnnouncement {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.entries.len() as u64);
        for &(prefix, metric) in &self.entries {
            put_u32(buf, prefix);
            put_u32(buf, metric);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let n = r.len()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push((r.u32()?, r.u32()?));
        }
        Some(rip::RipAnnouncement { entries })
    }
}

impl Wire for bgp::BgpMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            bgp::BgpMsg::Update { prefix, attrs } => {
                put_u8(buf, 0);
                put_u32(buf, *prefix);
                attrs.encode(buf);
            }
            bgp::BgpMsg::Withdraw { prefix, route_id } => {
                put_u8(buf, 1);
                put_u32(buf, *prefix);
                put_u32(buf, *route_id);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match r.u8()? {
            0 => Some(bgp::BgpMsg::Update { prefix: r.u32()?, attrs: bgp::PathAttrs::decode(r)? }),
            1 => Some(bgp::BgpMsg::Withdraw { prefix: r.u32()?, route_id: r.u32()? }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(T::decode(&mut r), Some(v));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn primitives() {
        round_trip(());
        round_trip(77u64);
        round_trip(NodeId(12));
    }

    #[test]
    fn bgp_externals() {
        let attrs = bgp::PathAttrs {
            route_id: 1,
            as_path_len: 3,
            neighbor_as: 100,
            med: 10,
            igp_dist: 10,
        };
        round_trip(bgp::BgpExt::Announce { prefix: 9, attrs });
        round_trip(bgp::BgpExt::Withdraw { prefix: 9, route_id: 4 });
    }

    #[test]
    fn rip_externals() {
        round_trip(rip::RipExt::Connect { prefix: 5 });
    }

    #[test]
    fn protocol_messages() {
        round_trip(ospf::OspfMsg::Hello);
        round_trip(ospf::OspfMsg::Lsa(ospf::Lsa {
            origin: NodeId(3),
            seq: 9,
            links: vec![(NodeId(1), 4), (NodeId(2), 7)],
        }));
        round_trip(ospf::OspfMsg::Ack { origin: NodeId(3), seq: 9 });
        round_trip(rip::RipAnnouncement { entries: vec![(7, 1), (9, 16)] });
        round_trip(rip::RipAnnouncement { entries: vec![] });
        let attrs = bgp::PathAttrs {
            route_id: 2,
            as_path_len: 1,
            neighbor_as: 7,
            med: 3,
            igp_dist: 5,
        };
        round_trip(bgp::BgpMsg::Update { prefix: 8, attrs });
        round_trip(bgp::BgpMsg::Withdraw { prefix: 8, route_id: 2 });
    }

    #[test]
    fn corrupt_input_fails_cleanly() {
        let mut r = Reader::new(&[2]);
        assert!(bgp::BgpExt::decode(&mut r).is_none());
        let mut r = Reader::new(&[3]);
        assert!(ospf::OspfMsg::decode(&mut r).is_none());
        let mut r = Reader::new(&[9]);
        assert!(bgp::BgpMsg::decode(&mut r).is_none());
    }
}
