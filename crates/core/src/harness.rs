//! Glue: builds an instrumented production network over the simulator,
//! drives workloads, and extracts recordings and committed logs.

use crate::config::DefinedConfig;
use crate::metrics::RbMetrics;
use crate::rb::{Envelope, RbShared, RbShim};
use crate::recorder::{CommitRecord, DropByIndex, ExtRecord, Recording};
use netsim::{
    JitterModel, LinkParams, NodeId, SimBuilder, SimDuration, SimTime, Simulator,
};
use routing::ControlPlane;
use std::collections::HashMap;
use std::sync::Arc;
use topology::{Graph, TopoMask};

/// A production network instrumented with DEFINED-RB.
pub struct RbNetwork<P: ControlPlane> {
    sim: Simulator<RbShim<P>>,
    shared: Arc<RbShared>,
    graph: Graph,
}

/// Builds the per-source shortest-path delay estimates (`dist[s][n]`, ns)
/// the shims use to annotate beacon ticks.
pub fn delay_estimates(g: &Graph) -> Vec<Vec<u64>> {
    let mask = TopoMask::default();
    (0..g.node_count())
        .map(|s| {
            let info = g.shortest_paths(NodeId(s as u32), &mask);
            info.dist
                .iter()
                .map(|d| d.map(|x| x.0).unwrap_or(u64::MAX / 4))
                .collect()
        })
        .collect()
}

impl<P: ControlPlane + 'static> RbNetwork<P> {
    /// Instruments `graph` with DEFINED-RB.
    ///
    /// * `cfg` — the DEFINED configuration;
    /// * `seed` — network nondeterminism seed (jitter);
    /// * `jitter_frac` — uniform per-packet jitter as a fraction of each
    ///   link's base delay;
    /// * `spawn` — constructs each node's control plane.
    pub fn new(
        graph: &Graph,
        cfg: DefinedConfig,
        seed: u64,
        jitter_frac: f64,
        mut spawn: impl FnMut(NodeId) -> P + 'static,
    ) -> Self {
        let n = graph.node_count();
        let mut link_est = vec![std::collections::BTreeMap::new(); n];
        for e in graph.edges() {
            link_est[e.a.index()].insert(e.b, e.delay.0);
            link_est[e.b.index()].insert(e.a, e.delay.0);
        }
        let shared = Arc::new(RbShared {
            cfg,
            n,
            link_est,
            dist: delay_estimates(graph),
            initial_source: NodeId(0),
        });
        let links = graph.to_links(|e| {
            LinkParams::with_delay(e.delay).jitter(JitterModel::Uniform { frac: jitter_frac })
        });
        let shared_for_spawn = Arc::clone(&shared);
        let mut sim = SimBuilder::new(n).links(links).build(seed, move |id| {
            RbShim::new(id, spawn(id), Arc::clone(&shared_for_spawn))
        });
        sim.set_collect_drop_payloads(true);
        RbNetwork { sim, shared, graph: graph.clone() }
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &Simulator<RbShim<P>> {
        &self.sim
    }

    /// Mutable access to the simulator (schedule failures, externals, ...).
    pub fn sim_mut(&mut self) -> &mut Simulator<RbShim<P>> {
        &mut self.sim
    }

    /// The instrumented topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The shared run context.
    pub fn shared(&self) -> &RbShared {
        &self.shared
    }

    /// Runs the production network until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.sim.run_until(deadline);
    }

    /// Schedules an external input.
    pub fn inject_external(&mut self, t: SimTime, node: NodeId, ev: P::Ext) {
        self.sim.schedule_external(t, node, ev);
    }

    /// Schedules a link failure/recovery.
    pub fn schedule_link(&mut self, t: SimTime, a: NodeId, b: NodeId, up: bool) {
        self.sim.schedule_link_admin(t, a, b, up);
    }

    /// Schedules a node crash/restart.
    pub fn schedule_node(&mut self, t: SimTime, node: NodeId, up: bool) {
        self.sim.schedule_node_admin(t, node, up);
    }

    /// Schedules `count` down/up flap cycles of the `a — b` link (see
    /// [`Simulator::schedule_link_flap`]).
    pub fn schedule_flap(
        &mut self,
        start: SimTime,
        a: NodeId,
        b: NodeId,
        down_for: SimDuration,
        period: SimDuration,
        count: u32,
    ) {
        self.sim.schedule_link_flap(start, a, b, down_for, period, count);
    }

    /// Schedules a bisection partition at `cut_at` — every link with exactly
    /// one endpoint in `side` goes down — healed again at `heal_at` when
    /// given. Returns the undirected pairs that were cut. The cut is
    /// computed from the static topology: the heal re-raises every crossing
    /// link, even one a separate fault had taken down.
    pub fn schedule_partition(
        &mut self,
        cut_at: SimTime,
        heal_at: Option<SimTime>,
        side: &[NodeId],
    ) -> Vec<(NodeId, NodeId)> {
        let cut = self.sim.schedule_partition(cut_at, side, false);
        if let Some(t) = heal_at {
            for &(a, b) in &cut {
                self.sim.schedule_link_admin(t, a, b, true);
            }
        }
        cut
    }

    /// Schedules a message-loss window on the `a — b` link: Bernoulli loss
    /// with probability `p` between `from` and `until`. Losses are committed
    /// into the partial recording by send index (footnote 4), so the window
    /// replays exactly in the debugging network.
    pub fn schedule_loss_window(
        &mut self,
        from: SimTime,
        until: SimTime,
        a: NodeId,
        b: NodeId,
        p: f64,
    ) {
        self.sim.schedule_link_loss(from, a, b, netsim::LossModel::Bernoulli { p });
        self.sim.schedule_link_loss(until, a, b, netsim::LossModel::None);
    }

    /// One node's control plane.
    pub fn control_plane(&self, node: NodeId) -> &P {
        self.sim.process(node).control_plane()
    }

    /// One node's RB metrics.
    pub fn node_metrics(&self, node: NodeId) -> RbMetrics {
        self.sim.process(node).metrics
    }

    /// All nodes' rollback shape samples, concatenated.
    pub fn rollback_samples(&self) -> Vec<crate::rb::RollbackSample> {
        (0..self.sim.node_count())
            .flat_map(|i| self.sim.process(NodeId(i as u32)).rollback_samples().to_vec())
            .collect()
    }

    /// All nodes' checkpoint shape samples, concatenated.
    pub fn checkpoint_samples(&self) -> Vec<crate::rb::CheckpointSample> {
        (0..self.sim.node_count())
            .flat_map(|i| self.sim.process(NodeId(i as u32)).checkpoint_samples().to_vec())
            .collect()
    }

    /// Aggregated RB metrics across all nodes.
    pub fn total_metrics(&self) -> RbMetrics {
        let mut total = RbMetrics::default();
        for i in 0..self.sim.node_count() {
            total.absorb(&self.sim.process(NodeId(i as u32)).metrics);
        }
        total
    }

    /// The initially configured beacon source (what
    /// [`into_recording`](Self::into_recording) stores as the recording's
    /// `source`).
    pub fn initial_source(&self) -> NodeId {
        self.shared.initial_source
    }

    /// A non-destructive snapshot of every node's external-event log so
    /// far, in the same shape [`into_recording`](Self::into_recording)
    /// collects at the end of a run (pre-sort). Lets a streaming store
    /// writer persist externals while the run is still in flight.
    pub fn externals_so_far(&self) -> Vec<ExtRecord<P::Ext>> {
        let mut externals = Vec::new();
        for i in 0..self.sim.node_count() {
            let node = NodeId(i as u32);
            for e in self.sim.process(node).ext_log() {
                externals.push(ExtRecord {
                    node,
                    ext_seq: e.ext_seq,
                    group: e.group,
                    payload: e.payload.clone(),
                });
            }
        }
        externals
    }

    /// Per-node committed delivery logs (committed + live entries).
    pub fn commit_logs(&self) -> Vec<Vec<CommitRecord>> {
        (0..self.sim.node_count())
            .map(|i| self.sim.process(NodeId(i as u32)).commit_records())
            .collect()
    }

    /// The highest group fully completed network-wide, with a safety margin
    /// of `margin` groups for in-flight chains.
    ///
    /// Nodes that are administratively down are excluded: their group
    /// counters froze at death, but their committed logs are final (the
    /// recording carries their death cut), so they do not hold back the
    /// comparison frontier of the surviving network.
    pub fn completed_group(&self, margin: u64) -> u64 {
        let min_group = (0..self.sim.node_count())
            .filter(|&i| self.sim.node_up(NodeId(i as u32)))
            .map(|i| self.sim.process(NodeId(i as u32)).current_group())
            .min()
            .unwrap_or(0);
        min_group.saturating_sub(margin)
    }

    /// Finalises every node and extracts the partial recording: external
    /// events with their group tags, plus committed message losses
    /// (footnote 4). Consumes the network.
    pub fn into_recording(mut self) -> (Recording<P::Ext>, Vec<Vec<CommitRecord>>) {
        let last_group = self.completed_group(0);
        let logs = self.commit_logs();
        // Build the committed send index: MsgId → (sender, committed idx).
        let mut send_index: HashMap<crate::order::MsgId, DropByIndex> = HashMap::new();
        let mut externals: Vec<ExtRecord<P::Ext>> = Vec::new();
        for i in 0..self.sim.node_count() {
            let node = NodeId(i as u32);
            for e in self.sim.process(node).ext_log() {
                externals.push(ExtRecord {
                    node,
                    ext_seq: e.ext_seq,
                    group: e.group,
                    payload: e.payload.clone(),
                });
            }
            let committed = self.sim.process_mut(node).finalize();
            for (idx, id) in committed.into_iter().enumerate() {
                send_index.insert(id, DropByIndex { sender: node, idx: idx as u64 });
            }
        }
        externals.sort_by_key(|e| (e.group, e.node, e.ext_seq));
        // Map in-flight losses back to committed send indexes.
        let mut drops = Vec::new();
        for (_, _, env) in self.sim.dropped_payloads() {
            if let Envelope::App { id, .. } = env {
                if let Some(&d) = send_index.get(id) {
                    drops.push(d);
                }
            }
        }
        drops.sort_by_key(|d| (d.sender, d.idx));
        drops.dedup();
        // Death cuts: nodes down at the end of the run replay only the
        // events they committed before crashing, then fall silent.
        let mut mutes = Vec::new();
        for (i, log) in logs.iter().enumerate() {
            let node = NodeId(i as u32);
            if !self.sim.node_up(node) {
                mutes.push(crate::recorder::MuteRecord {
                    node,
                    allowed: log.iter().map(|r| r.key).collect(),
                });
            }
        }
        // Beacon delivery schedule: which group ticks each node actually
        // delivered (partitions make nodes skip ticks; failovers change the
        // announcing source). Both are downstream of recorded external
        // events, so they are part of the partial recording.
        let mut ticks = Vec::new();
        for (i, log) in logs.iter().enumerate() {
            for r in log {
                if r.ann.class == crate::order::EventClass::Beacon && r.ann.group <= last_group {
                    ticks.push(crate::recorder::TickRecord {
                        node: NodeId(i as u32),
                        group: r.ann.group,
                        source: r.ann.origin,
                    });
                }
            }
        }
        ticks.sort_by_key(|t| (t.group, t.node));
        let recording = Recording {
            n_nodes: self.sim.node_count(),
            source: self.shared.initial_source,
            externals,
            drops,
            mutes,
            ticks,
            last_group,
        };
        (recording, logs)
    }
}

/// Builds an uninstrumented baseline network over the same graph — the
/// "unmodified XORP" configuration every figure compares against.
pub fn baseline_network<P: ControlPlane + 'static>(
    graph: &Graph,
    tick: SimDuration,
    seed: u64,
    jitter_frac: f64,
    mut spawn: impl FnMut(NodeId) -> P + 'static,
) -> Simulator<routing::NativeAdapter<P>> {
    let links = graph.to_links(|e| {
        LinkParams::with_delay(e.delay).jitter(JitterModel::Uniform { frac: jitter_frac })
    });
    SimBuilder::new(graph.node_count())
        .links(links)
        .build(seed, move |id| routing::NativeAdapter::new(spawn(id), tick))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;
    use routing::ospf::{OspfConfig, OspfProcess};
    use topology::canonical;

    fn ring_rb(seed: u64, jitter: f64) -> RbNetwork<OspfProcess> {
        let g = canonical::ring(4, SimDuration::from_millis(5));
        let cfg = DefinedConfig::default();
        let spawn: Vec<OspfProcess> = {
            let f = OspfProcess::for_graph(&g, OspfConfig::stress(4));
            (0..4).map(|i| f(NodeId(i))).collect()
        };
        RbNetwork::new(&g, cfg, seed, jitter, move |id| spawn[id.index()].clone())
    }

    #[test]
    fn beacons_advance_groups() {
        let mut net = ring_rb(1, 0.2);
        net.run_until(SimTime::from_secs(5));
        for i in 0..4 {
            let g = net.sim().process(NodeId(i)).current_group();
            assert!(g >= 15, "node {i} group {g} after 5s of 250ms beacons");
        }
    }

    #[test]
    fn ospf_converges_under_rb() {
        let mut net = ring_rb(2, 0.3);
        net.run_until(SimTime::from_secs(12));
        let g = net.graph().clone();
        for i in 0..4 {
            let expected = OspfProcess::expected_table(&g, &TopoMask::default(), NodeId(i));
            assert_eq!(
                *net.control_plane(NodeId(i)).routing_table(),
                expected,
                "node {i} table"
            );
        }
    }

    #[test]
    fn determinism_across_seeds() {
        // The headline property: different jitter seeds, identical committed
        // per-node delivery sequences.
        let run = |seed| {
            let mut net = ring_rb(seed, 0.5);
            net.run_until(SimTime::from_secs(8));
            let last = net.completed_group(2);
            let logs = net.commit_logs();
            logs.into_iter()
                .map(|l| crate::recorder::trim_log(&l, last))
                .collect::<Vec<_>>()
        };
        let a = run(11);
        let b = run(999);
        assert_eq!(a, b, "committed logs must match across seeds");
        assert!(a.iter().map(|l| l.len()).sum::<usize>() > 50, "logs non-trivial");
    }

    #[test]
    fn baseline_is_not_deterministic() {
        // Sanity check that the masked nondeterminism is real: the baseline
        // delivers in different orders across seeds.
        let g = canonical::ring(4, SimDuration::from_millis(5));
        let run = |seed| {
            let f = OspfProcess::for_graph(&g, OspfConfig::stress(4));
            let spawn: Vec<OspfProcess> = (0..4).map(|i| f(NodeId(i))).collect();
            let mut sim = baseline_network(
                &g,
                SimDuration::from_millis(250),
                seed,
                0.5,
                move |id| spawn[id.index()].clone(),
            );
            sim.trace_mut().set_enabled(true);
            sim.run_until(SimTime::from_secs(5));
            sim.trace().events().to_vec()
        };
        assert_ne!(run(11), run(999));
    }

    #[test]
    fn rollbacks_happen_under_jitter() {
        let mut net = ring_rb(3, 0.9);
        net.run_until(SimTime::from_secs(10));
        let m = net.total_metrics();
        assert!(m.fast_path > 0);
        assert!(m.rollbacks > 0, "heavy jitter should force some rollbacks");
        assert_eq!(m.window_violations, 0);
    }

    #[test]
    fn recording_extraction_works() {
        let mut net = ring_rb(4, 0.3);
        net.run_until(SimTime::from_secs(4));
        let (rec, logs) = net.into_recording();
        assert_eq!(rec.n_nodes, 4);
        assert!(rec.last_group >= 10);
        // Startup is implicit; no runtime externals were injected.
        assert!(rec.externals.is_empty());
        assert_eq!(logs.len(), 4);
        let bytes = rec.to_bytes();
        assert_eq!(Recording::from_bytes(&bytes), Some(rec));
    }

    #[test]
    fn loss_window_and_flap_reproduce_in_lockstep() {
        // The new fault hooks must stay inside Theorem 1: a run with a
        // Bernoulli loss window and a link flap replays exactly from its
        // partial recording.
        let g = canonical::ring(4, SimDuration::from_millis(5));
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(4));
        let procs: Vec<OspfProcess> = (0..4).map(|i| f(NodeId(i))).collect();
        let p2 = procs.clone();
        let mut net =
            RbNetwork::new(&g, DefinedConfig::default(), 21, 0.5, move |id| procs[id.index()].clone());
        net.schedule_loss_window(
            SimTime::from_millis(1500),
            SimTime::from_millis(3000),
            NodeId(1),
            NodeId(2),
            0.5,
        );
        net.schedule_flap(
            SimTime::from_millis(3500),
            NodeId(0),
            NodeId(3),
            SimDuration::from_millis(400),
            SimDuration::from_millis(900),
            2,
        );
        net.run_until(SimTime::from_secs(7));
        let upto = net.completed_group(2);
        let (rec, rb_logs) = net.into_recording();
        assert!(!rec.drops.is_empty(), "window + flap should cost some packets");
        let mut ls = crate::ls::LockstepNet::new(&g, DefinedConfig::default(), rec, move |id| {
            p2[id.index()].clone()
        });
        ls.run_to_end();
        let div = crate::ls::first_divergence(&rb_logs, ls.logs(), upto);
        assert!(div.is_none(), "loss-window replay diverged: {div:?}");
    }

    #[test]
    fn partition_hook_cuts_and_heals() {
        let g = canonical::grid(2, 3, SimDuration::from_millis(4));
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(6));
        let procs: Vec<OspfProcess> = (0..6).map(|i| f(NodeId(i))).collect();
        let mut net =
            RbNetwork::new(&g, DefinedConfig::default(), 2, 0.3, move |id| procs[id.index()].clone());
        let cut = net.schedule_partition(
            SimTime::from_secs(2),
            Some(SimTime::from_secs(4)),
            &[NodeId(0), NodeId(3)],
        );
        // Grid 2x3 (row-major): {0,3} is the left column; 0-1 and 3-4 cross.
        assert_eq!(cut, vec![(NodeId(0), NodeId(1)), (NodeId(3), NodeId(4))]);
        net.run_until(SimTime::from_secs(3));
        assert!(!net.sim().link_up(NodeId(0), NodeId(1)));
        assert!(net.sim().link_up(NodeId(0), NodeId(3)), "intra-side link stays up");
        net.run_until(SimTime::from_secs(6));
        assert!(net.sim().link_up(NodeId(0), NodeId(1)), "partition healed");
    }

    #[test]
    fn commit_horizon_gc_bounds_history() {
        let g = canonical::ring(4, SimDuration::from_millis(5));
        let cfg = DefinedConfig::production(SimDuration::from_millis(500));
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(4));
        let spawn: Vec<OspfProcess> = (0..4).map(|i| f(NodeId(i))).collect();
        let mut net = RbNetwork::new(&g, cfg, 5, 0.3, move |id| spawn[id.index()].clone());
        net.run_until(SimTime::from_secs(20));
        let m = net.total_metrics();
        assert_eq!(m.window_violations, 0, "horizon must be safe");
        for i in 0..4 {
            let len = net.sim().process(NodeId(i)).history_len();
            assert!(len < 200, "node {i} history {len} should be GC-bounded");
        }
    }
}
