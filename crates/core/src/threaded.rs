//! A threaded lockstep runtime: each debugging node runs on its own OS
//! thread, coordinated phase-by-phase with a real barrier — the "distributed
//! semaphore" of §2.3 made concrete.
//!
//! Thread scheduling introduces genuine nondeterminism in message *arrival*
//! order at each node's mailbox; the ordering function masks it, so the
//! threaded replay commits exactly the same per-node logs as the
//! single-threaded [`crate::ls::LockstepNet`]. That equality is asserted in
//! the integration tests and is a faithful miniature of the paper's claim.
//!
//! Crashed nodes replay their recorded death cut and then *close their
//! mailboxes* (drop their channel receiver), exactly as the dead production
//! process stopped reading its sockets. A send to a closed mailbox fails
//! with a disconnection error; senders treat that as the recorded-dead-node
//! absorption it is — the message would have been filtered by the death cut
//! anyway — rather than a fatal condition.

use crate::config::DefinedConfig;
use crate::order::{debug_digest, Annotation};
use crate::recorder::{CommitRecord, Recording};
use crate::snapshot::NodeSnapshot;
use crossbeam::channel::{unbounded, Receiver, Sender};
use netsim::NodeId;
use parking_lot::Mutex;
use routing::{ControlPlane, Outbox};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use topology::Graph;

impl<M, X> Work<M, X> {
    fn ann(&self) -> &Annotation {
        match self {
            Work::Start(a) | Work::External(a, _) | Work::BeaconTick(a) | Work::Msg(a, _, _) => a,
        }
    }
}

#[derive(Clone, Debug)]
enum Work<M, X> {
    Start(Annotation),
    External(Annotation, X),
    BeaconTick(Annotation),
    Msg(Annotation, NodeId, M),
}

/// Runs `recording` on `graph` with one thread per node; returns the
/// per-node committed logs.
///
/// `spawn` must be `Sync` because every worker thread constructs its own
/// control plane from it.
pub fn run_threaded<P>(
    graph: &Graph,
    cfg: DefinedConfig,
    recording: Recording<P::Ext>,
    spawn: impl Fn(NodeId) -> P + Sync,
) -> Vec<Vec<CommitRecord>>
where
    P: ControlPlane,
{
    let n = graph.node_count();
    assert_eq!(n, recording.n_nodes);
    let mut link_est = vec![BTreeMap::new(); n];
    for e in graph.edges() {
        link_est[e.a.index()].insert(e.b, e.delay.0);
        link_est[e.b.index()].insert(e.a, e.delay.0);
    }
    let dist = crate::harness::delay_estimates(graph);
    let drops: std::collections::HashSet<(NodeId, u64)> =
        recording.drops.iter().map(|d| (d.sender, d.idx)).collect();
    // Death cuts as ordering-independent event identities (see
    // `OrderKey::identity`), mirroring the single-threaded replayer.
    let mutes: std::collections::HashMap<
        NodeId,
        std::collections::HashSet<crate::order::EventIdentity>,
    > = recording
        .mutes
        .iter()
        .map(|m| (m.node, m.allowed.iter().map(|k| k.identity()).collect()))
        .collect();

    type Channels<M, X> = (Vec<Sender<Work<M, X>>>, Vec<Receiver<Work<M, X>>>);
    let (senders, receivers): Channels<P::Msg, P::Ext> = (0..n).map(|_| unbounded()).unzip();
    // Two barrier waits per sub-cycle: one after injection/transmission, one
    // after processing.
    let barrier = Arc::new(Barrier::new(n + 1));
    let any_sent = Arc::new(AtomicBool::new(false));
    let logs: Arc<Mutex<Vec<Vec<CommitRecord>>>> = Arc::new(Mutex::new(vec![Vec::new(); n]));
    let done = Arc::new(AtomicBool::new(false));
    // The coordinator publishes the group/sub-cycle being processed; workers
    // hold back any mailbox item tagged for a later group or chain depth so
    // the lockstep discipline matches the single-threaded replayer exactly.
    let cur_group = Arc::new(AtomicU64::new(0));
    let cur_cycle = Arc::new(AtomicU32::new(0));
    // Set when a worker still holds an event belonging to the current group
    // (e.g. a chain-overflow message held over from the previous group), so
    // a quiet sub-cycle does not end the group prematurely.
    let any_held = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for (i, rx) in receivers.into_iter().enumerate() {
            let me = NodeId(i as u32);
            let senders = senders.clone();
            let barrier = Arc::clone(&barrier);
            let any_sent = Arc::clone(&any_sent);
            let logs = Arc::clone(&logs);
            let done = Arc::clone(&done);
            let link_est = link_est[i].clone();
            let cfg = cfg.clone();
            let drops = drops.clone();
            let my_mute = mutes.get(&me).cloned();
            let spawn = &spawn;
            let cur_group = Arc::clone(&cur_group);
            let cur_cycle = Arc::clone(&cur_cycle);
            let any_held = Arc::clone(&any_held);
            scope.spawn(move || {
                // This worker owns the sole receiver for its mailbox;
                // dropping it is how a recorded-dead node goes silent.
                let mut rx = Some(rx);
                // The last group in which the death cut still delivers
                // anything; past it the node has nothing left to commit.
                let dead_after =
                    my_mute.as_ref().map(|allowed| {
                        allowed.iter().map(|k| k.group()).max().unwrap_or(0)
                    });
                let mut snap = NodeSnapshot::new(spawn(me));
                let mut send_count = 0u64;
                let mut local_log: Vec<CommitRecord> = Vec::new();
                let mut held: Vec<Work<P::Msg, P::Ext>> = Vec::new();
                loop {
                    // Phase A: wait for the coordinator to finish injecting.
                    barrier.wait();
                    if done.load(Ordering::SeqCst) {
                        break;
                    }
                    let group = cur_group.load(Ordering::SeqCst);
                    let cycle = cur_cycle.load(Ordering::SeqCst);
                    // A crashed node whose death cut is exhausted closes its
                    // mailbox: it keeps honouring the barrier (the semaphore
                    // must stay balanced) but reads nothing further, exactly
                    // like the dead production process.
                    if let Some(cut) = dead_after {
                        if group > cut && rx.is_some() {
                            rx = None;
                            held.clear();
                        }
                    }
                    // Processing phase: drain the mailbox (arrival order is
                    // nondeterministic under threading), defer anything
                    // tagged for a later group/sub-cycle, sort the rest by
                    // the ordering function, deliver.
                    if let Some(rx) = &rx {
                        held.extend(rx.try_iter());
                    }
                    let mut batch: Vec<Work<P::Msg, P::Ext>> = Vec::new();
                    let mut keep: Vec<Work<P::Msg, P::Ext>> = Vec::new();
                    for w in held.drain(..) {
                        let a = w.ann();
                        if a.group == group && a.chain == cycle {
                            batch.push(w);
                        } else {
                            if a.group == group {
                                any_held.store(true, Ordering::SeqCst);
                            }
                            keep.push(w);
                        }
                    }
                    held = keep;
                    // Death cut: deliver only the recorded pre-crash events.
                    if let Some(allowed) = &my_mute {
                        batch.retain(|w| {
                            allowed.contains(&w.ann().key(cfg.ordering).identity())
                        });
                    }
                    batch.sort_by_key(|w| w.ann().key(cfg.ordering));
                    for work in batch {
                        let (ann, digest) = match &work {
                            Work::Start(a) => (*a, 1),
                            Work::External(a, x) => (*a, debug_digest(x)),
                            Work::BeaconTick(a) => (*a, 0),
                            Work::Msg(a, _, m) => (*a, debug_digest(m)),
                        };
                        let mut outs: Vec<Outbox<P::Msg>> = Vec::new();
                        match work {
                            Work::Start(_) => {
                                let mut out = Outbox::new();
                                snap.cp.on_start(&mut out);
                                outs.push(out);
                            }
                            Work::External(_, x) => {
                                let mut out = Outbox::new();
                                snap.cp.on_external(&x, &mut out);
                                outs.push(out);
                            }
                            Work::Msg(_, from, m) => {
                                let mut out = Outbox::new();
                                snap.cp.on_message(from, &m, &mut out);
                                outs.push(out);
                            }
                            Work::BeaconTick(a) => {
                                snap.current_group = a.group;
                                loop {
                                    let due = snap.take_due_timers(a.group);
                                    if due.is_empty() {
                                        break;
                                    }
                                    for token in due {
                                        let mut out = Outbox::new();
                                        snap.cp.on_timer(token, &mut out);
                                        outs.push(out);
                                    }
                                }
                            }
                        }
                        let mut emit = 0u32;
                        for out in outs {
                            snap.apply_timer_ops(&out.arms, &out.cancels);
                            for (to, payload) in out.sends {
                                let link = link_est.get(&to).copied().unwrap_or(1);
                                let child =
                                    Annotation::child(&ann, me, link, emit, cfg.chain_bound);
                                emit += 1;
                                let idx = send_count;
                                send_count += 1;
                                if drops.contains(&(me, idx)) {
                                    continue;
                                }
                                // A disconnected peer is a recorded-dead
                                // node: the message is absorbed, exactly as
                                // the dead production node absorbed nothing
                                // further. Only deliverable traffic extends
                                // the sub-cycle loop.
                                if senders[to.index()]
                                    .send(Work::Msg(child, me, payload))
                                    .is_ok()
                                {
                                    any_sent.store(true, Ordering::SeqCst);
                                }
                            }
                        }
                        local_log.push(CommitRecord {
                            key: ann.key(cfg.ordering),
                            ann,
                            payload_digest: digest,
                        });
                    }
                    // Phase B: processing finished.
                    barrier.wait();
                }
                logs.lock()[i] = local_log;
            });
        }

        // Coordinator: injects per-group chain-0 events and runs sub-cycles
        // until the group quiesces. Messages sent by workers during
        // sub-cycle c sit in mailboxes and are processed in sub-cycle c+1 —
        // except chain-overflow messages, which workers tag with a later
        // group; they simply wait in mailboxes (sorting by group keeps them
        // ordered correctly when finally processed).
        let mut tick_map: BTreeMap<u64, Vec<(NodeId, NodeId)>> = BTreeMap::new();
        for t in &recording.ticks {
            tick_map.entry(t.group).or_default().push((t.node, t.source));
        }
        for group in 1..=recording.last_group {
            cur_group.store(group, Ordering::SeqCst);
            if group == 1 {
                for (i, tx) in senders.iter().enumerate() {
                    let node = NodeId(i as u32);
                    let _ = tx.send(Work::Start(Annotation::external(node, 1, 0)));
                }
            }
            // Injections into a closed mailbox are absorbed: the node is
            // recorded dead past this group and would have filtered them.
            for e in recording.externals_for_group(group) {
                let _ = senders[e.node.index()].send(Work::External(
                    Annotation::external(e.node, group, e.ext_seq),
                    e.payload.clone(),
                ));
            }
            // Beacon ticks follow the recorded per-node delivery schedule.
            for &(node, source) in tick_map.get(&group).map(Vec::as_slice).unwrap_or(&[]) {
                let ann =
                    Annotation::beacon(source, group, dist[source.index()][node.index()]);
                let _ = senders[node.index()].send(Work::BeaconTick(ann));
            }
            // Sub-cycles until quiescent. Workers process chain-`c` events
            // in sub-cycle `c`; a trailing empty cycle confirms quiescence
            // (held-over messages for later groups do not count).
            let mut cycle = 0u32;
            loop {
                cur_cycle.store(cycle, Ordering::SeqCst);
                any_sent.store(false, Ordering::SeqCst);
                any_held.store(false, Ordering::SeqCst);
                barrier.wait(); // Release processing.
                barrier.wait(); // Wait for processing to finish.
                if !any_sent.load(Ordering::SeqCst) && !any_held.load(Ordering::SeqCst) {
                    break;
                }
                cycle += 1;
            }
        }
        done.store(true, Ordering::SeqCst);
        barrier.wait();
    });

    Arc::try_unwrap(logs).expect("threads joined").into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::RbNetwork;
    use crate::ls::{first_divergence, LockstepNet};
    use netsim::{NodeId, SimDuration, SimTime};
    use routing::ospf::{OspfConfig, OspfProcess};
    use routing::rip::{RefreshMode, RipConfig, RipExt, RipProcess};
    use topology::canonical;

    /// The threaded lockstep (real threads, real barrier, nondeterministic
    /// mailbox order) commits the same logs as the single-threaded replayer
    /// and hence the same execution as the production network.
    #[test]
    fn threaded_matches_single_threaded_and_rb() {
        let g = canonical::ring(4, SimDuration::from_millis(4));
        let cfg = DefinedConfig::default();
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(4));
        let spawn: Vec<OspfProcess> = (0..4).map(|i| f(NodeId(i))).collect();
        let s1 = spawn.clone();
        let s2 = spawn.clone();
        let mut net = RbNetwork::new(&g, cfg.clone(), 21, 0.6, move |id| spawn[id.index()].clone());
        net.run_until(SimTime::from_secs(4));
        let upto = net.completed_group(2);
        let (rec, rb_logs) = net.into_recording();

        let mut ls = LockstepNet::new(&g, cfg.clone(), rec.clone(), move |id| s1[id.index()].clone());
        ls.run_to_end();

        let threaded_logs = run_threaded(&g, cfg, rec, move |id| s2[id.index()].clone());

        assert!(
            first_divergence(ls.logs(), &threaded_logs, upto).is_none(),
            "threaded LS must equal single-threaded LS"
        );
        assert!(
            first_divergence(&rb_logs, &threaded_logs, upto).is_none(),
            "threaded LS must reproduce the production run"
        );
    }

    /// Repeated threaded runs are identical despite scheduler noise.
    #[test]
    fn threaded_runs_are_repeatable() {
        let g = canonical::line(3, SimDuration::from_millis(3));
        let cfg = DefinedConfig::default();
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(3));
        let spawn: Vec<OspfProcess> = (0..3).map(|i| f(NodeId(i))).collect();
        let sp = spawn.clone();
        let mut net = RbNetwork::new(&g, cfg.clone(), 5, 0.3, move |id| spawn[id.index()].clone());
        net.run_until(SimTime::from_secs(3));
        let (rec, _) = net.into_recording();
        let a = run_threaded(&g, cfg.clone(), rec.clone(), |id| sp[id.index()].clone());
        let b = run_threaded(&g, cfg, rec, |id| sp[id.index()].clone());
        assert_eq!(a, b);
    }

    /// Crash-fault regression: a recording with a mid-run node death (a
    /// death cut in the recording) replays under the threaded runtime
    /// without panicking — the dead worker closes its mailbox once its cut
    /// is exhausted and peers absorb the failed sends — and still commits
    /// exactly the single-threaded logs.
    #[test]
    fn threaded_replays_crash_scenarios() {
        let (g, roles) = canonical::fig5_rip(SimDuration::from_millis(10));
        let cfg = DefinedConfig::default();
        let spawner = {
            let g = g.clone();
            move |id: NodeId| {
                RipProcess::new(id, g.neighbors(id), RipConfig::emulation(RefreshMode::DestinationOnly))
            }
        };
        let mut net = RbNetwork::new(&g, cfg.clone(), 2, 0.6, spawner.clone());
        net.inject_external(SimTime::from_millis(100), roles.dest, RipExt::Connect { prefix: 7 });
        net.schedule_node(SimTime::from_secs(6), roles.r2, false);
        net.run_until(SimTime::from_secs(20));
        let upto = net.completed_group(2);
        let (rec, rb_logs) = net.into_recording();
        assert!(!rec.mutes.is_empty(), "the crash produced a death cut");

        let mut ls = LockstepNet::new(&g, cfg.clone(), rec.clone(), spawner.clone());
        ls.run_to_end();
        let threaded_logs = run_threaded(&g, cfg.clone(), rec.clone(), spawner.clone());
        assert!(
            first_divergence(ls.logs(), &threaded_logs, upto).is_none(),
            "threaded LS must equal single-threaded LS across a crash"
        );
        assert!(
            first_divergence(&rb_logs, &threaded_logs, upto).is_none(),
            "threaded LS must reproduce the production run across a crash"
        );
        // And repeatably so, mailbox closure and all.
        let again = run_threaded(&g, cfg, rec, spawner);
        assert_eq!(threaded_logs, again);
    }
}
