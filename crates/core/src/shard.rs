//! The shard-local wave engine behind [`LockstepNet`]: deterministic
//! intra-replay parallelism (DESIGN.md §10).
//!
//! A lockstep replay advances in *waves* — the deliveries of one sub-cycle,
//! sorted by the production order key. Within a wave, deliveries to
//! *different* nodes are independent by construction: a delivery mutates
//! only its destination node's snapshot, send counter, and committed log,
//! and every message it emits joins the *next* wave (or a later group's
//! holdover), never the wave in flight. Partitioning the nodes across
//! worker shards and executing one wave barrier-to-barrier therefore
//! commutes with the serial sweep, event for event:
//!
//! * per-node delivery order is the wave order restricted to that node's
//!   shard, which equals the serial order restricted to that node;
//! * the death-cut [`EventIdentity`] filter is evaluated per destination
//!   node, so it holds shard-locally exactly as it holds serially;
//! * recorded losses are keyed by the *sender's* committed send index,
//!   which only the sender's own deliveries advance;
//! * the emitted messages of all shards are merged in any order and then
//!   sorted by the strictly total `(OrderKey, to)` before the next wave is
//!   consumed, so the cross-shard exchange erases shard boundaries.
//!
//! [`WaveEngine`] is the seam: [`ShardedWaves`] executes a wave across a
//! block partition of the nodes (`shards = 1` is the inline serial sweep),
//! and an alternative engine — e.g. GVT-bounded optimistic execution over
//! the `core::rb` Time Warp machinery — can be swapped in via
//! [`LockstepNet::set_engine`] without touching the replay state machine.
//!
//! [`LockstepNet`]: crate::ls::LockstepNet
//! [`LockstepNet::set_engine`]: crate::ls::LockstepNet::set_engine
//! [`EventIdentity`]: crate::order::EventIdentity

use crate::config::OrderingMode;
use crate::ls::LsEvent;
use defined_obs as obs;
use crate::order::{debug_digest, Annotation, EventIdentity};
use crate::recorder::CommitRecord;
use crate::snapshot::NodeSnapshot;
use netsim::NodeId;
use routing::{ControlPlane, Outbox};
use std::collections::{BTreeMap, HashSet};

/// Resolves a requested worker count: `0` means "auto" — the host's
/// available parallelism (`1` when it cannot be determined).
pub fn resolve_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    }
}

/// One staged delivery of a lockstep wave.
#[derive(Clone, Debug)]
pub struct Pending<M, X> {
    pub(crate) to: NodeId,
    pub(crate) from: NodeId,
    pub(crate) ann: Annotation,
    pub(crate) ev: LsPayload<M, X>,
}

impl<M, X> Pending<M, X> {
    /// The destination node — what the shard partition routes on.
    pub fn destination(&self) -> NodeId {
        self.to
    }

    /// The delivery's ordering annotation.
    pub fn annotation(&self) -> &Annotation {
        &self.ann
    }
}

/// What a staged delivery carries.
#[derive(Clone, Debug)]
pub(crate) enum LsPayload<M, X> {
    Start,
    External(X),
    BeaconTick,
    Msg(M),
}

/// One replayed node: its composite snapshot plus the committed send
/// counter recorded losses are keyed by.
pub struct LsNode<P: ControlPlane> {
    pub(crate) snap: NodeSnapshot<P>,
    pub(crate) send_count: u64,
}

/// The read-only delivery context one wave executes under: the ordering
/// configuration and the recording-derived tables (losses, death cuts, link
/// estimates), plus the wave's phase markers. Shared by every shard of a
/// wave — nothing in it is written during execution, which is what makes
/// the shards independent.
pub struct DeliveryCtx<'a> {
    pub(crate) ordering: OrderingMode,
    pub(crate) chain_bound: u32,
    pub(crate) group: u64,
    pub(crate) chain: u32,
    pub(crate) drops: &'a HashSet<(NodeId, u64)>,
    pub(crate) mutes: &'a BTreeMap<NodeId, HashSet<EventIdentity>>,
    pub(crate) link_est: &'a [BTreeMap<NodeId, u64>],
}

impl DeliveryCtx<'_> {
    /// The death-cut filter, evaluated at the destination: a crashed node
    /// delivers only the events of its recorded cut. Membership is tested
    /// by ordering-salt-independent [`EventIdentity`], and depends only on
    /// the destination node — so the filter holds per shard exactly as it
    /// holds serially.
    pub fn allows<M, X>(&self, p: &Pending<M, X>) -> bool {
        match self.mutes.get(&p.to) {
            Some(allowed) => allowed.contains(&p.ann.key(self.ordering).identity()),
            None => true,
        }
    }

    /// Delivers `p` to its destination node, pushing the commit record onto
    /// `log` and every surviving send onto `emitted`. Touches nothing but
    /// `node`, `log`, and `emitted` — the whole determinism argument of
    /// sharded execution rests on this signature.
    pub fn deliver<P: ControlPlane>(
        &self,
        node: &mut LsNode<P>,
        log: &mut Vec<CommitRecord>,
        p: &Pending<P::Msg, P::Ext>,
        emitted: &mut Vec<Pending<P::Msg, P::Ext>>,
    ) -> LsEvent {
        let mut records_digest = 0u64;
        match &p.ev {
            LsPayload::Start => {
                records_digest = 1;
                let mut out = Outbox::new();
                node.snap.cp.on_start(&mut out);
                self.dispatch(node, p.to, &p.ann, out, &mut 0, emitted);
            }
            LsPayload::External(x) => {
                records_digest = debug_digest(x);
                let mut out = Outbox::new();
                node.snap.cp.on_external(x, &mut out);
                self.dispatch(node, p.to, &p.ann, out, &mut 0, emitted);
            }
            LsPayload::Msg(m) => {
                records_digest = debug_digest(m);
                let mut out = Outbox::new();
                node.snap.cp.on_message(p.from, m, &mut out);
                self.dispatch(node, p.to, &p.ann, out, &mut 0, emitted);
            }
            LsPayload::BeaconTick => {
                node.snap.current_group = p.ann.group;
                let mut emit = 0u32;
                loop {
                    let due = node.snap.take_due_timers(p.ann.group);
                    if due.is_empty() {
                        break;
                    }
                    for token in due {
                        let mut out = Outbox::new();
                        node.snap.cp.on_timer(token, &mut out);
                        self.dispatch(node, p.to, &p.ann, out, &mut emit, emitted);
                    }
                }
            }
        }
        let record = CommitRecord {
            key: p.ann.key(self.ordering),
            ann: p.ann,
            payload_digest: records_digest,
        };
        log.push(record);
        LsEvent { node: p.to, group: self.group, chain: self.chain, record }
    }

    /// Applies one handler invocation's buffered effects: timer ops on the
    /// node, then each send annotated, counted against the node's committed
    /// send index (replaying recorded losses), and staged into `emitted`.
    fn dispatch<P: ControlPlane>(
        &self,
        node: &mut LsNode<P>,
        me: NodeId,
        parent: &Annotation,
        out: Outbox<P::Msg>,
        emit: &mut u32,
        emitted: &mut Vec<Pending<P::Msg, P::Ext>>,
    ) {
        node.snap.apply_timer_ops(&out.arms, &out.cancels);
        for (to, payload) in out.sends {
            let link = self.link_est[me.index()].get(&to).copied().unwrap_or(1);
            let ann = Annotation::child(parent, me, link, *emit, self.chain_bound);
            *emit += 1;
            let send_idx = node.send_count;
            node.send_count += 1;
            if self.drops.contains(&(me, send_idx)) {
                continue; // Replay the recorded loss.
            }
            emitted.push(Pending { to, from: me, ann, ev: LsPayload::Msg(payload) });
        }
    }
}

/// What executing one wave produced: the delivered-event count and the
/// messages emitted into later sub-cycles, in an *arbitrary* cross-shard
/// order — the caller sorts by the strictly total `(OrderKey, to)` before
/// the next wave is consumed, so this order never matters.
pub struct WaveOutput<M, X> {
    /// Events actually delivered (death-cut-filtered ones are absorbed).
    pub delivered: usize,
    /// Messages materialised by the wave's handlers.
    pub emitted: Vec<Pending<M, X>>,
}

/// How a [`LockstepNet`] executes one staged wave of deliveries.
///
/// The contract an implementation must keep for Theorem 1 to survive
/// sharding: each node receives exactly the wave's deliveries addressed to
/// it that pass [`DeliveryCtx::allows`], in wave order; each delivery goes
/// through [`DeliveryCtx::deliver`] against that node's own state and log;
/// and every emitted message is returned (order among them is free — the
/// caller re-sorts).
///
/// [`LockstepNet`]: crate::ls::LockstepNet
pub trait WaveEngine<P: ControlPlane>: Send + Sync {
    /// The worker-shard count this engine runs, for display and planning.
    fn shards(&self) -> usize;

    /// Executes one wave against the whole network.
    fn execute(
        &self,
        ctx: &DeliveryCtx<'_>,
        nodes: &mut [LsNode<P>],
        logs: &mut [Vec<CommitRecord>],
        wave: &[Pending<P::Msg, P::Ext>],
    ) -> WaveOutput<P::Msg, P::Ext>;
}

/// Below this many staged deliveries per shard a wave runs inline: spawning
/// scoped workers costs more than sweeping a short wave, and by the
/// determinism contract the choice affects only cost, never results.
const DEFAULT_MIN_WAVE_PER_SHARD: usize = 4;

/// The block-partitioned wave engine: nodes are split into `shards`
/// contiguous blocks, one scoped worker per block sweeps the shared wave
/// for deliveries addressed to its block, and the per-block outputs are
/// concatenated. `shards = 1` (the default) is exactly the serial sweep,
/// inline on the calling thread.
#[derive(Clone, Copy, Debug)]
pub struct ShardedWaves {
    shards: usize,
    min_wave_per_shard: usize,
}

impl ShardedWaves {
    /// An engine with `shards` workers; `0` means "auto"
    /// ([`resolve_workers`]).
    pub fn new(shards: usize) -> Self {
        ShardedWaves {
            shards: resolve_workers(shards).max(1),
            min_wave_per_shard: DEFAULT_MIN_WAVE_PER_SHARD,
        }
    }

    /// Overrides the inline-execution threshold — tests force `0` so even
    /// tiny waves cross real thread boundaries.
    pub fn with_min_wave_per_shard(mut self, min: usize) -> Self {
        self.min_wave_per_shard = min;
        self
    }
}

impl<P: ControlPlane> WaveEngine<P> for ShardedWaves {
    fn shards(&self) -> usize {
        self.shards
    }

    fn execute(
        &self,
        ctx: &DeliveryCtx<'_>,
        nodes: &mut [LsNode<P>],
        logs: &mut [Vec<CommitRecord>],
        wave: &[Pending<P::Msg, P::Ext>],
    ) -> WaveOutput<P::Msg, P::Ext> {
        let shards = self.shards.min(nodes.len()).max(1);
        if shards == 1 || wave.len() < shards * self.min_wave_per_shard {
            return execute_block(ctx, nodes, logs, 0, wave);
        }
        let per = nodes.len().div_ceil(shards);
        let mut out = WaveOutput { delivered: 0, emitted: Vec::new() };
        let (mut most, mut least) = (0usize, usize::MAX);
        std::thread::scope(|scope| {
            let workers: Vec<_> = nodes
                .chunks_mut(per)
                .zip(logs.chunks_mut(per))
                .enumerate()
                .map(|(s, (block, block_logs))| {
                    scope.spawn(move || {
                        // The shard span gives each worker its own lane in
                        // a Chrome trace (one flamegraph row per shard).
                        let _lane = obs::span!("ls.shard");
                        execute_block(ctx, block, block_logs, s * per, wave)
                    })
                })
                .collect();
            // Joined in shard order; the concatenation order is erased by
            // the caller's sort anyway.
            for w in workers {
                let part = w.join().expect("a shard worker panicked");
                most = most.max(part.delivered);
                least = least.min(part.delivered);
                out.delivered += part.delivered;
                out.emitted.extend(part.emitted);
            }
        });
        // Shard imbalance: deliveries the busiest worker handled beyond
        // the laziest — the block partition's load-skew observable.
        obs::hist!("ls.shard_imbalance").record((most - least) as u64);
        out
    }
}

/// The serial sweep of one wave restricted to the node block starting at
/// `base`: the sharded execution is this function applied per block, and
/// `shards = 1` is this function applied to the whole network.
fn execute_block<P: ControlPlane>(
    ctx: &DeliveryCtx<'_>,
    block: &mut [LsNode<P>],
    block_logs: &mut [Vec<CommitRecord>],
    base: usize,
    wave: &[Pending<P::Msg, P::Ext>],
) -> WaveOutput<P::Msg, P::Ext> {
    let mut out = WaveOutput { delivered: 0, emitted: Vec::new() };
    for p in wave {
        let idx = p.to.index();
        if idx < base || idx >= base + block.len() || !ctx.allows(p) {
            continue;
        }
        ctx.deliver(&mut block[idx - base], &mut block_logs[idx - base], p, &mut out.emitted);
        out.delivered += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_workers_auto_is_at_least_one() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
    }

    #[test]
    fn sharded_waves_clamp_to_at_least_one() {
        let e = ShardedWaves::new(0);
        assert!(e.shards >= 1, "auto resolves to >= 1");
        assert_eq!(ShardedWaves::new(5).shards, 5);
    }
}
