//! The replay farm: parallel, checkpoint-accelerated probe execution for
//! the mechanised search engines ([`crate::explore`], [`crate::bisect`]).
//!
//! DEFINED's determinism (Theorem 1) makes replays *comparable*, so
//! debugging searches — ordering sweeps, prefix bisection — are
//! embarrassingly parallel: every probe is an independent deterministic
//! replay. This module supplies the two ingredients that turn the serial
//! engines into a farm without changing their answers:
//!
//! * **Worker pools** whose results are a pure function of the probe
//!   *schedule*, never of thread timing. A salt sweep claims indices in
//!   order and keeps the minimum-index hit (`sweep_min`), so the parallel
//!   sweep returns the *earliest* matching salt, not the first to finish; a
//!   bisection round probes a fixed set of midpoints and combines them by
//!   position (`map_indexed`), so speculative k-way bisection converges
//!   to the same group as the serial binary search.
//! * **Checkpoint-seeded probe sessions** ([`ProbeSession`]): each worker
//!   owns a [`LockstepNet`] plus a [`Timeline`] of group-boundary images
//!   captured during its own forward replays. A prefix probe restores the
//!   nearest checkpoint at or before the target group and re-executes at
//!   most one checkpoint interval — sublinear per probe, instead of a full
//!   replay from event zero.
//!
//! DESIGN.md §9 gives the determinism argument in full.

use crate::config::DefinedConfig;
use crate::ls::{LockstepNet, LsHistory, LsImage};
use crate::recorder::Recording;
use crate::wire::Wire;
use checkpoint::{RetentionPolicy, Strategy, Timeline};
use defined_obs as obs;
use netsim::NodeId;
use parking_lot::Mutex;
use routing::ControlPlane;
use std::sync::atomic::{AtomicUsize, Ordering};
use topology::Graph;

/// Default spacing, in groups, between the images a [`ProbeSession`]
/// retains along its forward replays. Small enough that a probe re-executes
/// only a short tail; large enough that image capture stays off the hot
/// path.
pub const DEFAULT_PROBE_CHECKPOINT_INTERVAL: u64 = 8;

/// How a farm runs its probes. Every field influences only *cost*; the
/// results of the search engines are identical for any configuration
/// (asserted by `tests/farm_determinism.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FarmConfig {
    /// Worker threads. `1` runs probes inline on the calling thread.
    pub jobs: usize,
    /// Midpoints probed per bisection round (k-way speculation). `1` is
    /// exactly the serial binary search; the probe *schedule* is a function
    /// of this value alone, so `replays` in a [`crate::bisect::BisectReport`]
    /// does not depend on `jobs`.
    pub speculation: usize,
    /// Groups between retained probe-session checkpoints.
    pub checkpoint_every: u64,
    /// Worker shards *within* each probe replay
    /// ([`LockstepNet::with_shards`]) — intra-replay parallelism, composing
    /// with the inter-probe parallelism of `jobs`.
    pub shards: usize,
}

impl FarmConfig {
    /// The serial configuration: one inline worker, binary (non-speculative)
    /// bisection, unsharded replays. The rewritten serial engines use
    /// exactly this, so their behaviour is the farm's `jobs = 1` column by
    /// construction.
    pub fn serial() -> Self {
        FarmConfig {
            jobs: 1,
            speculation: 1,
            checkpoint_every: DEFAULT_PROBE_CHECKPOINT_INTERVAL,
            shards: 1,
        }
    }

    /// `jobs` workers with matching speculation width (each bisection round
    /// keeps every worker busy). `0` means auto: the host's available
    /// parallelism ([`crate::shard::resolve_workers`]).
    pub fn with_jobs(jobs: usize) -> Self {
        let jobs = crate::shard::resolve_workers(jobs);
        FarmConfig { jobs, speculation: jobs, ..FarmConfig::serial() }
    }

    /// Builder: shards each probe replay `shards` ways (`0` = auto).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = crate::shard::resolve_workers(shards);
        self
    }
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig::serial()
    }
}

/// A probe job that panicked on both its supervised attempts.
///
/// Worker panics never take the farm down: each job runs under
/// `catch_unwind`, is retried once, and only then reported as this
/// structured per-job failure — the surviving jobs' results are unaffected
/// (and remain job-count invariant).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPanic {
    /// The job's index in its round.
    pub index: usize,
    /// The panic payload, when it was a string.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "probe job {} panicked: {}", self.index, self.message)
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `eval` under `catch_unwind` with one retry: transient panics cost
/// a retry, a second panic becomes a structured [`JobPanic`].
fn eval_supervised<T>(eval: impl Fn() -> T, index: usize) -> Result<T, JobPanic> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&eval)) {
        Ok(t) => Ok(t),
        Err(first) => {
            obs::counter!("farm.job_panics").add(1);
            obs::counter!("farm.job_retries").add(1);
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&eval)) {
                Ok(t) => Ok(t),
                Err(_) => {
                    obs::counter!("farm.job_panics").add(1);
                    Err(JobPanic { index, message: panic_message(&*first) })
                }
            }
        }
    }
}

/// Two supervised attempts, then a third *uncaught* one on the calling
/// thread — the graceful degradation to serial for callers whose return
/// type cannot carry a per-job error: a transient panic is absorbed, a
/// deterministic one propagates cleanly (no hung workers, no dead
/// mailboxes) after the farm has already wound down.
pub(crate) fn supervised<T>(eval: impl Fn() -> T) -> T {
    match eval_supervised(&eval, 0) {
        Ok(t) => t,
        Err(_) => {
            obs::counter!("farm.serial_fallback").add(1);
            eval()
        }
    }
}

/// Resolves a round of supervised results: surviving jobs pass through,
/// failed jobs are re-evaluated serially (uncaught) in index order.
pub(crate) fn settle<T>(results: Vec<Result<T, JobPanic>>, eval: impl Fn(usize) -> T) -> Vec<T> {
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.unwrap_or_else(|_| {
                obs::counter!("farm.serial_fallback").add(1);
                eval(i)
            })
        })
        .collect()
}

/// Runs `eval(0..n)` across `jobs` workers and returns the results in
/// index order — a deterministic parallel map. Workers claim indices from a
/// shared counter; placement by index erases completion order. Each job is
/// supervised: a panicking probe yields `Err(JobPanic)` in its slot rather
/// than tearing down the scope.
pub(crate) fn map_indexed<T, F>(jobs: usize, n: usize, eval: F) -> Vec<Result<T, JobPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    let queued = obs::Stopwatch::start();
    if jobs == 1 {
        return (0..n)
            .map(|i| {
                obs::counter!("farm.jobs_claimed").add(1);
                queued.lap(obs::hist!("farm.queue_wait_ns"));
                eval_supervised(|| eval(i), i)
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<T, JobPanic>>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= n {
                    break;
                }
                obs::counter!("farm.jobs_claimed").add(1);
                queued.lap(obs::hist!("farm.queue_wait_ns"));
                let out = eval_supervised(|| eval(i), i);
                slots.lock()[i] = Some(out);
            });
        }
    });
    slots.into_inner().into_iter().map(|s| s.expect("every index evaluated")).collect()
}

/// Runs `eval(0..n)` across `jobs` workers until the *smallest* index with
/// a `Some` result is known; returns that `(index, value)`.
///
/// Determinism: indices are claimed in increasing order, so by the time any
/// hit at index `i` is recorded, every index below `i` has been claimed and
/// will finish evaluating; the minimum over recorded hits is therefore the
/// global minimum-index hit regardless of which worker finishes first.
/// Indices above a recorded hit are skipped — the early-exit that makes a
/// found-quickly sweep cheap.
pub(crate) fn sweep_min<T, F>(jobs: usize, n: usize, eval: F) -> Option<(usize, T)>
where
    T: Send,
    F: Fn(usize) -> Option<T> + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    let queued = obs::Stopwatch::start();
    if jobs == 1 {
        return (0..n).find_map(|i| {
            obs::counter!("farm.jobs_claimed").add(1);
            queued.lap(obs::hist!("farm.queue_wait_ns"));
            supervised(|| eval(i)).map(|t| (i, t))
        });
    }
    let next = AtomicUsize::new(0);
    let cutoff = AtomicUsize::new(usize::MAX);
    let best: Mutex<Option<(usize, T)>> = Mutex::new(None);
    let failed: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= n || i >= cutoff.load(Ordering::SeqCst) {
                    break;
                }
                obs::counter!("farm.jobs_claimed").add(1);
                queued.lap(obs::hist!("farm.queue_wait_ns"));
                match eval_supervised(|| eval(i), i) {
                    Ok(Some(t)) => {
                        cutoff.fetch_min(i, Ordering::SeqCst);
                        let mut b = best.lock();
                        if b.as_ref().is_none_or(|&(bi, _)| i < bi) {
                            *b = Some((i, t));
                        }
                    }
                    Ok(None) => {}
                    Err(_) => failed.lock().push(i),
                }
            });
        }
    });
    // Serial third attempts for jobs that panicked twice, in index order,
    // stopping once the established minimum can no longer be improved. A
    // deterministic panic propagates here, on the calling thread, after
    // the farm has wound down cleanly.
    let mut best = best.into_inner();
    let mut failed = failed.into_inner();
    failed.sort_unstable();
    for i in failed {
        if best.as_ref().is_some_and(|&(bi, _)| bi < i) {
            break;
        }
        obs::counter!("farm.serial_fallback").add(1);
        if let Some(t) = eval(i) {
            if best.as_ref().is_none_or(|&(bi, _)| i < bi) {
                best = Some((i, t));
            }
        }
    }
    best
}

/// A reusable probe worker: a lockstep replay plus the checkpoint timeline
/// of its own history. Repositioning restores the nearest retained image at
/// or before the target and re-executes forward, capturing fresh images at
/// every [`FarmConfig::checkpoint_every`] group boundary on the way — so a
/// session's probes cost one checkpoint interval of replay, not the whole
/// run, wherever in the recording they land.
///
/// Images are captured only at exact group starts
/// ([`LockstepNet::run_to_group_start`]), which is also the boundary the
/// bisection probes are defined on.
pub struct ProbeSession<P: ControlPlane> {
    net: LockstepNet<P>,
    timeline: Timeline<LsImage<P>>,
    /// Longest canonical history observed by this session's replays: lets a
    /// restore land *ahead* of the current position with full log fidelity
    /// (see [`LockstepNet::restore_image_seeded`]).
    history: LsHistory,
    interval: u64,
}

impl<P> ProbeSession<P>
where
    P: ControlPlane,
    P::Msg: Wire,
    P::Ext: Wire,
{
    /// Builds a session over a fresh replay and anchors its timeline at
    /// position 0 (the anchor is never thinned, so every rewind target is
    /// reachable). The session's replay runs under `farm.shards` worker
    /// shards and checkpoints every `farm.checkpoint_every` groups — images
    /// themselves are shard-count-agnostic, so a timeline seeded under one
    /// shard count restores under any other.
    pub fn new(
        graph: &Graph,
        cfg: DefinedConfig,
        recording: Recording<P::Ext>,
        spawn: impl FnMut(NodeId) -> P,
        farm: &FarmConfig,
    ) -> Self {
        let net = LockstepNet::new(graph, cfg, recording, spawn).with_shards(farm.shards);
        // CloneState: probe farms optimise replay latency, not resident
        // memory, and deep clones skip the encode pass entirely.
        let mut timeline = Timeline::new(Strategy::CloneState, RetentionPolicy::default());
        timeline.record(0, &net.capture_image());
        let history = LsHistory::new(graph.node_count());
        ProbeSession { net, timeline, history, interval: farm.checkpoint_every.max(1) }
    }

    /// The replay at its current position.
    pub fn net(&self) -> &LockstepNet<P> {
        &self.net
    }

    /// Unwraps the session, keeping the replay where it stands (for
    /// event-level stepping past a located boundary).
    pub fn into_net(self) -> LockstepNet<P> {
        self.net
    }

    /// Retained checkpoint positions (groups), for inspection.
    pub fn checkpoint_positions(&self) -> Vec<u64> {
        self.timeline.positions().collect()
    }

    /// Positions the replay at the exact start of `group`, seeding from the
    /// best retained checkpoint: rewinds restore the nearest image at or
    /// before the target; forward moves also restore when a retained image
    /// lies *beyond* the current position (a previous probe already covered
    /// the ground).
    pub fn goto_group_start(&mut self, group: u64) {
        let _span = obs::span!("farm.goto");
        self.net.merge_history(&mut self.history);
        let cur = self.net.current_group();
        let usable_forward = !self.net.is_done()
            && (cur < group || (cur == group && self.net.at_group_start()));
        let seed = self.timeline.position_at_or_before(group);
        if !usable_forward || seed.is_some_and(|p| p > cur) {
            let (pos, img) = self
                .timeline
                .restore_at_or_before(group)
                .expect("the anchor at position 0 is never thinned");
            if pos == 0 {
                obs::counter!("farm.probe_from_zero").add(1);
            } else {
                obs::counter!("farm.probe_seeded").add(1);
            }
            // Seeded restore: the image may lie ahead of the current
            // position; the session's accumulated history supplies the
            // canonical log prefix either way.
            self.net.restore_image_seeded(img, &self.history);
        } else {
            obs::counter!("farm.probe_continued").add(1);
        }
        let replay_from = self.net.current_group();
        while !self.net.is_done() && self.net.current_group() < group {
            let cur = self.net.current_group();
            let target = ((cur / self.interval + 1) * self.interval).min(group);
            if !self.net.run_to_group_start(target) {
                break; // Recording exhausted: the state is the full replay.
            }
            if target.is_multiple_of(self.interval) {
                self.timeline.record(target, &self.net.capture_image());
            }
        }
        obs::hist!("farm.probe_groups_replayed")
            .record(self.net.current_group().saturating_sub(replay_from));
        self.net.merge_history(&mut self.history);
    }

    /// One prefix probe: positions at the end of group `g` (the exact start
    /// of `g + 1`) and evaluates the predicate there.
    pub fn probe_prefix(&mut self, g: u64, bad: impl Fn(&LockstepNet<P>) -> bool) -> bool {
        self.goto_group_start(g + 1);
        bad(&self.net)
    }
}

/// A shared bag of [`ProbeSession`]s: workers borrow one per probe and
/// return it, so session state (and its checkpoints) survives across rounds
/// however the round's probes are scheduled onto threads.
pub(crate) struct SessionPool<P: ControlPlane>(Mutex<Vec<ProbeSession<P>>>);

impl<P: ControlPlane> SessionPool<P> {
    pub(crate) fn new() -> Self {
        SessionPool(Mutex::new(Vec::new()))
    }

    pub(crate) fn take(&self) -> Option<ProbeSession<P>> {
        self.0.lock().pop()
    }

    pub(crate) fn put(&self, session: ProbeSession<P>) {
        self.0.lock().push(session);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::RbNetwork;
    use netsim::{SimDuration, SimTime};
    use routing::ospf::{OspfConfig, OspfProcess};
    use topology::canonical;

    #[test]
    fn map_indexed_orders_results_by_index() {
        for jobs in [1, 2, 8] {
            let out: Vec<usize> =
                map_indexed(jobs, 20, |i| i * i).into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>(), "jobs={jobs}");
        }
        assert!(map_indexed(4, 0, |i| i).is_empty());
    }

    /// A deterministically panicking job becomes a structured `Err` in its
    /// slot — no hang, no scope teardown — and every surviving job's
    /// result is identical under any job count.
    #[test]
    fn panicking_jobs_are_reported_not_fatal() {
        for jobs in [1, 2, 8] {
            let out = map_indexed(jobs, 12, |i| {
                assert!(i != 5, "deliberate probe panic");
                i * 3
            });
            assert_eq!(out.len(), 12, "jobs={jobs}");
            for (i, r) in out.iter().enumerate() {
                match r {
                    Ok(v) if i != 5 => assert_eq!(*v, i * 3),
                    Err(p) if i == 5 => {
                        assert_eq!(p.index, 5);
                        assert!(p.message.contains("deliberate probe panic"), "{p}");
                    }
                    other => panic!("jobs={jobs} slot {i}: unexpected {other:?}"),
                }
            }
        }
    }

    /// A transient panic is absorbed by the single retry.
    #[test]
    fn transient_panics_are_retried() {
        let tripped = AtomicUsize::new(0);
        let out = map_indexed(2, 8, |i| {
            if i == 3 && tripped.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            i
        });
        assert!(out.iter().enumerate().all(|(i, r)| r.as_ref() == Ok(&i)), "{out:?}");
        assert_eq!(tripped.load(Ordering::SeqCst), 2, "one failure + one retry");
    }

    /// `settle` re-runs failed jobs serially so Option-shaped callers
    /// still get a full result set when the panic was transient.
    #[test]
    fn settle_degrades_failed_jobs_to_serial() {
        let results = vec![Ok(10), Err(JobPanic { index: 1, message: "boom".into() }), Ok(30)];
        assert_eq!(settle(results, |i| i * 100), vec![10, 100, 30]);
    }

    /// `sweep_min` keeps its earliest-hit guarantee when a job below the
    /// eventual minimum panics twice: the serial third attempt re-probes it
    /// before the answer is accepted.
    #[test]
    fn sweep_min_survives_panicking_probes() {
        for jobs in [2, 3, 8] {
            // Index 2 panics on its first two attempts, then succeeds with a
            // hit — the sweep must still surface it as the minimum.
            let calls = AtomicUsize::new(0);
            let hit = |i: usize| {
                if i == 2 && calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("flaky probe");
                }
                [2, 7, 11].contains(&i).then_some(i * 10)
            };
            assert_eq!(sweep_min(jobs, 32, hit), Some((2, 20)), "jobs={jobs}");
            // A panicking non-hit below the minimum must not mask it.
            let calls = AtomicUsize::new(0);
            let hit = |i: usize| {
                if i == 1 && calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("flaky probe");
                }
                (i == 7).then_some(i)
            };
            assert_eq!(sweep_min(jobs, 32, hit), Some((7, 7)), "jobs={jobs}");
        }
    }

    #[test]
    fn sweep_min_returns_the_smallest_hit_at_any_width() {
        // Hits at 7, 11, 13: the sweep must report 7 under every job count,
        // even though a wider pool may evaluate 11 or 13 first.
        let hit = |i: usize| [7, 11, 13].contains(&i).then_some(i * 10);
        for jobs in [1, 2, 3, 8] {
            assert_eq!(sweep_min(jobs, 32, hit), Some((7, 70)), "jobs={jobs}");
            assert_eq!(sweep_min(jobs, 32, |_: usize| None::<u8>), None, "jobs={jobs}");
            assert_eq!(sweep_min(jobs, 7, hit), None, "hit lies past the range");
        }
    }

    fn recorded() -> (topology::Graph, Recording<()>, Vec<OspfProcess>) {
        let g = canonical::ring(4, SimDuration::from_millis(4));
        let procs: Vec<OspfProcess> = {
            let f = OspfProcess::for_graph(&g, OspfConfig::stress(4));
            (0..4).map(|i| f(NodeId(i))).collect()
        };
        let spawn = procs.clone();
        let mut net = RbNetwork::new(&g, DefinedConfig::default(), 9, 0.4, move |id| {
            spawn[id.index()].clone()
        });
        net.run_until(SimTime::from_secs(4));
        let (rec, _) = net.into_recording();
        (g, rec, procs)
    }

    /// A session's probes land on the same states a fresh from-zero replay
    /// reaches, in any probe order, and its timeline accumulates seeds.
    #[test]
    fn probe_session_matches_from_zero_replays_in_any_order() {
        let (g, rec, procs) = recorded();
        let last = rec.last_group;
        assert!(last > 10, "recording long enough: {last}");
        let spawn = |id: NodeId| procs[id.index()].clone();
        let farm = FarmConfig { checkpoint_every: 4, ..FarmConfig::serial() };
        let mut session =
            ProbeSession::new(&g, DefinedConfig::default(), rec.clone(), spawn, &farm);
        for target in [last, 3, last / 2, 5, last / 2, last + 1] {
            session.goto_group_start(target);
            let mut fresh =
                LockstepNet::new(&g, DefinedConfig::default(), rec.clone(), spawn);
            fresh.run_to_group_start(target);
            assert_eq!(
                session.net().logs(),
                fresh.logs(),
                "probe at group {target} diverged from the from-zero replay"
            );
        }
        assert!(
            session.checkpoint_positions().len() > 2,
            "forward replays retained boundary images: {:?}",
            session.checkpoint_positions()
        );
    }
}
