//! DEFINED: deterministic execution for interactive control-plane debugging.
//!
//! This crate implements the paper's contribution on top of the workspace
//! substrates ([`netsim`], [`topology`], [`routing`], [`checkpoint`]):
//!
//! * **DEFINED-RB** ([`rb::RbShim`], wired up by [`harness::RbNetwork`]) —
//!   instruments a production network. Each node intercepts message and
//!   timer events, computes a deterministic pseudorandom order over them
//!   (the [`order`] module), delivers speculatively in arrival order, and
//!   rolls back — restoring a checkpoint and *unsending* messages with
//!   anti-messages — whenever arrivals violate the computed order (§2.2).
//! * **Virtual time** — a beacon node floods group-number beacons (one per
//!   250 ms); beacons are themselves ordered events, so the virtual-time
//!   counter and every protocol timer fire deterministically relative to
//!   message deliveries (§3).
//! * **Partial recording** ([`recorder::Recording`]) — only external events
//!   (and observed message losses, per the paper's footnote 4) are logged.
//! * **DEFINED-LS** ([`ls::LockstepNet`]) — replays a recording in lockstep
//!   (transmission/processing phases), applying the *same* ordering
//!   function, which reproduces the production execution exactly
//!   (Theorem 1). A threaded runtime ([`threaded`]) demonstrates the
//!   distributed-semaphore coordination with real threads.
//! * **Interactive debugging** ([`debugger::Debugger`]) — single-event
//!   stepping, state inspection, breakpoints, and in-place patching; a
//!   text-command front-end ([`session::DebugSession`]) for scripts and
//!   REPLs; automated fault localisation ([`bisect`]) and execution-path
//!   exploration ([`explore`]) on top, both running their probes on a
//!   parallel, checkpoint-seeded replay farm ([`farm`]) without changing
//!   their answers.
//! * **GVT & fossil collection** ([`gvt`]) — the Jefferson global-virtual-
//!   time bound behind Theorem 2, as a monitored invariant and as an
//!   alternative commit/GC policy.
//!
//! # Ordering-function refinement
//!
//! The paper orders messages within a group by `(dᵢ, nᵢ, sᵢ)`. For Theorem 1
//! to hold *by construction* against a lockstep replayer, the key here is
//! refined to `(group, chain, class, d, origin, origin_seq, sender, emit,
//! lineage)`: `chain` (causal depth, which equals the lockstep sub-cycle
//! that produces the message) leads, and `sender`/`emit`/`lineage` break
//! residual ties deterministically. `d` remains the dominant intra-chain
//! component, so the optimised ordering still tracks expected arrival times
//! and keeps rollbacks rare, as §2.2 intends. DESIGN.md discusses the
//! refinement.
//!
//! # Examples
//!
//! The full production → recording → debugging cycle:
//!
//! ```
//! use defined_core::ls::first_divergence;
//! use defined_core::{DefinedConfig, LockstepNet, RbNetwork};
//! use netsim::{NodeId, SimDuration, SimTime};
//! use routing::ospf::{OspfConfig, OspfProcess};
//! use topology::canonical;
//!
//! // A 5-node OSPF ring, instrumented with DEFINED-RB, under 50% jitter.
//! let graph = canonical::ring(5, SimDuration::from_millis(4));
//! let mk = OspfProcess::for_graph(&graph, OspfConfig::stress(5));
//! let procs: Vec<OspfProcess> = (0..5).map(|i| mk(NodeId(i))).collect();
//! let spawn = {
//!     let procs = procs.clone();
//!     move |id: NodeId| procs[id.index()].clone()
//! };
//! let mut net = RbNetwork::new(&graph, DefinedConfig::default(), 7, 0.5, spawn);
//! net.schedule_link(SimTime::from_secs(2), NodeId(0), NodeId(1), false);
//! net.run_until(SimTime::from_secs(5));
//!
//! // Extract the partial recording and replay it in lockstep: Theorem 1
//! // says the replay reproduces the production execution exactly.
//! let upto = net.completed_group(2);
//! let (recording, production_logs) = net.into_recording();
//! let mut ls = LockstepNet::new(&graph, DefinedConfig::default(), recording, move |id| {
//!     procs[id.index()].clone()
//! });
//! ls.run_to_end();
//! assert!(first_divergence(&production_logs, ls.logs(), upto).is_none());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bisect;
pub mod bufpool;
pub mod config;
pub mod debugger;
pub mod explore;
pub mod farm;
pub mod gvt;
pub mod harness;
pub mod session;
pub mod ls;
pub mod metrics;
pub mod order;
pub mod rb;
pub mod recorder;
pub mod shard;
pub mod snapshot;
pub mod threaded;
pub mod wire;

pub use config::{DefinedConfig, OrderingMode};
pub use farm::{FarmConfig, ProbeSession};
pub use harness::RbNetwork;
pub use ls::{LockstepNet, ShardedNet};
pub use metrics::RbMetrics;
pub use order::{Annotation, EventClass, MsgId, OrderKey};
pub use rb::{Envelope, RbShim};
pub use recorder::{CommitRecord, ExtRecord, Recording};
pub use shard::{resolve_workers, ShardedWaves, WaveEngine};
