//! Message identities, annotations, and the pseudorandom ordering function.
//!
//! Every deliverable event carries an [`Annotation`] built from the paper's
//! three fields — originating node `nᵢ`, origin sequence `sᵢ`, and estimated
//! delay `dᵢ` (§2.2, Fig. 1) — plus the group number, the causal-chain depth,
//! and two deterministic tie-breaks. [`Annotation::key`] turns it into the
//! totally ordered [`OrderKey`] every node sorts by.

use crate::config::OrderingMode;
use checkpoint::fnv1a;
use netsim::NodeId;

/// Globally unique identity of one transmitted message.
///
/// `incarnation` increments at the sender on every rollback, so re-sent
/// messages are never confused with the rolled-back originals they replace,
/// even when their annotations are identical.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MsgId {
    /// Transmitting node.
    pub sender: NodeId,
    /// Sender's rollback incarnation at send time.
    pub incarnation: u32,
    /// Sender-local send counter (never reused).
    pub seq: u64,
}

/// What kind of event an annotation describes; a component of the order key
/// so that, within a group, externals precede the beacon tick, which precedes
/// all messages.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EventClass {
    /// An external input (including node startup), always chain depth 0.
    External = 0,
    /// The beacon / virtual-time tick for the group, chain depth 0.
    Beacon = 1,
    /// An application message, chain depth ≥ 1.
    Message = 2,
}

/// The ordering metadata attached to every deliverable event.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Annotation {
    /// Group (timestep) number; strictly increasing, broadcast by beacons.
    pub group: u64,
    /// Causal chain depth within the group (0 for externals/beacons; a
    /// message's depth is its parent's + 1). Equals the lockstep sub-cycle
    /// in which DEFINED-LS materialises the message.
    pub chain: u32,
    /// Event class (see [`EventClass`]).
    pub class: EventClass,
    /// `dᵢ`: deterministic estimate (ns) of the delay from the originating
    /// node, accumulated over average link delays along the causal chain.
    pub delay: u64,
    /// `nᵢ`: the node that originated the causal chain.
    pub origin: NodeId,
    /// `sᵢ`: strictly increasing counter at the originating node.
    pub origin_seq: u64,
    /// Tie-break: the node that transmitted this particular message.
    pub sender: NodeId,
    /// Tie-break: index of this send within its parent handler's outbox.
    pub emit: u32,
    /// Final tie-break: a digest chained over the causal path
    /// (`H(parent.lineage, sender, emit)`, grounded at the unique external
    /// or beacon origin). Two *distinct* messages can share every paper
    /// field — e.g. when equal-delay flood copies of the same origin chain
    /// reach a node and each handler emits at the same outbox index — and
    /// without this component the "total" order would fall back to arrival
    /// order, which jitter can flip. The lineage digest makes the ordering
    /// function a genuine total order over causally distinct events.
    pub lineage: u64,
}

/// A total order over events; larger keys are delivered later.
///
/// Component order: group, chain, class, then either the delay estimate
/// (optimised mode) or a hash permutation (random mode), then origin, origin
/// sequence, sender, and emit index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OrderKey {
    pub(crate) group: u64,
    pub(crate) chain: u32,
    pub(crate) class: u8,
    pub(crate) rank: u64,
    pub(crate) origin: u32,
    pub(crate) origin_seq: u64,
    pub(crate) sender: u32,
    pub(crate) emit: u32,
    pub(crate) lineage: u64,
}

impl OrderKey {
    /// Appends a stable binary encoding (49 bytes).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.group.to_le_bytes());
        buf.extend_from_slice(&self.chain.to_le_bytes());
        buf.push(self.class);
        buf.extend_from_slice(&self.rank.to_le_bytes());
        buf.extend_from_slice(&self.origin.to_le_bytes());
        buf.extend_from_slice(&self.origin_seq.to_le_bytes());
        buf.extend_from_slice(&self.sender.to_le_bytes());
        buf.extend_from_slice(&self.emit.to_le_bytes());
        buf.extend_from_slice(&self.lineage.to_le_bytes());
    }

    /// Decodes what [`OrderKey::encode`] wrote.
    pub fn decode(r: &mut routing::enc::Reader<'_>) -> Option<Self> {
        Some(OrderKey {
            group: r.u64()?,
            chain: r.u32()?,
            class: r.u8()?,
            rank: r.u64()?,
            origin: r.u32()?,
            origin_seq: r.u64()?,
            sender: r.u32()?,
            emit: r.u32()?,
            lineage: r.u64()?,
        })
    }

    /// The group component (used for trimming comparisons).
    pub fn group(&self) -> u64 {
        self.group
    }

    /// The ordering-independent *event identity*: every component except
    /// `rank`, the only field that depends on the ordering mode/salt in
    /// effect when the key was computed. Distinct events always differ in
    /// some identity field (`lineage` chains the causal path at minimum),
    /// so under any one fixed ordering identity equality coincides with
    /// key equality.
    ///
    /// Death cuts are sets of *events*, not schedule positions; membership
    /// tests against them use this, so a replay under a different ordering
    /// function (an exploration sweep) still recognises — and a crashed
    /// node still delivers — the recorded pre-crash events it reproduces.
    pub fn identity(&self) -> EventIdentity {
        EventIdentity {
            group: self.group,
            chain: self.chain,
            class: self.class,
            origin: self.origin,
            origin_seq: self.origin_seq,
            sender: self.sender,
            emit: self.emit,
            lineage: self.lineage,
        }
    }
}

/// An [`OrderKey`] minus its ordering-dependent `rank` — the stable
/// identity of one committed event (see [`OrderKey::identity`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventIdentity {
    group: u64,
    chain: u32,
    class: u8,
    origin: u32,
    origin_seq: u64,
    sender: u32,
    emit: u32,
    lineage: u64,
}

impl EventIdentity {
    /// The group component (e.g. for "last group with anything left to
    /// deliver" bounds).
    pub fn group(&self) -> u64 {
        self.group
    }
}

impl std::fmt::Display for EventClass {
    /// The lowercase noun the debugger surfaces use (`external`, `beacon`,
    /// `message`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EventClass::External => "external",
            EventClass::Beacon => "beacon",
            EventClass::Message => "message",
        })
    }
}

impl EventClass {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(EventClass::External),
            1 => Some(EventClass::Beacon),
            2 => Some(EventClass::Message),
            _ => None,
        }
    }
}

impl Annotation {
    /// Appends a stable binary encoding of every field.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.group.to_le_bytes());
        buf.extend_from_slice(&self.chain.to_le_bytes());
        buf.push(self.class as u8);
        buf.extend_from_slice(&self.delay.to_le_bytes());
        buf.extend_from_slice(&self.origin.0.to_le_bytes());
        buf.extend_from_slice(&self.origin_seq.to_le_bytes());
        buf.extend_from_slice(&self.sender.0.to_le_bytes());
        buf.extend_from_slice(&self.emit.to_le_bytes());
        buf.extend_from_slice(&self.lineage.to_le_bytes());
    }

    /// Decodes what [`Annotation::encode`] wrote.
    pub fn decode(r: &mut routing::enc::Reader<'_>) -> Option<Self> {
        Some(Annotation {
            group: r.u64()?,
            chain: r.u32()?,
            class: EventClass::from_u8(r.u8()?)?,
            delay: r.u64()?,
            origin: NodeId(r.u32()?),
            origin_seq: r.u64()?,
            sender: NodeId(r.u32()?),
            emit: r.u32()?,
            lineage: r.u64()?,
        })
    }
}

/// Mixes a sequence of words into a deterministic 64-bit digest (lineage
/// chaining).
fn mix(parts: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(parts.len() * 8);
    for p in parts {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    fnv1a(&bytes)
}

impl Annotation {
    /// Computes the order key under the given mode.
    pub fn key(&self, mode: OrderingMode) -> OrderKey {
        let rank = match mode {
            OrderingMode::Optimized => self.delay,
            OrderingMode::Random => self.permuted_rank(0),
            OrderingMode::Permuted(salt) => self.permuted_rank(salt),
        };
        OrderKey {
            group: self.group,
            chain: self.chain,
            class: self.class as u8,
            rank,
            origin: self.origin.0,
            origin_seq: self.origin_seq,
            sender: self.sender.0,
            emit: self.emit,
            lineage: self.lineage,
        }
    }

    /// Deterministic hash permutation of the identifying fields — the
    /// "straightforward hashing" strawman of §2.2, salted so different
    /// schedules can be explored.
    fn permuted_rank(&self, salt: u64) -> u64 {
        let mut bytes = [0u8; 36];
        bytes[..8].copy_from_slice(&self.delay.to_le_bytes());
        bytes[8..12].copy_from_slice(&self.origin.0.to_le_bytes());
        bytes[12..20].copy_from_slice(&self.origin_seq.to_le_bytes());
        bytes[20..24].copy_from_slice(&self.sender.0.to_le_bytes());
        bytes[24..28].copy_from_slice(&self.emit.to_le_bytes());
        bytes[28..36].copy_from_slice(&salt.to_le_bytes());
        fnv1a(&bytes)
    }

    /// Annotation for an external event (or node startup) at `node`.
    pub fn external(node: NodeId, group: u64, ext_seq: u64) -> Self {
        Annotation {
            group,
            chain: 0,
            class: EventClass::External,
            delay: 0,
            origin: node,
            origin_seq: ext_seq,
            sender: node,
            emit: 0,
            lineage: mix(&[0, node.0 as u64, group, ext_seq]),
        }
    }

    /// Annotation for the group-`number` beacon tick as observed at a node
    /// whose estimated distance from the beacon source is `dist`.
    pub fn beacon(source: NodeId, number: u64, dist: u64) -> Self {
        Annotation {
            group: number,
            chain: 0,
            class: EventClass::Beacon,
            delay: dist,
            origin: source,
            origin_seq: number,
            sender: source,
            emit: 0,
            lineage: mix(&[1, source.0 as u64, number]),
        }
    }

    /// Annotation for a message that starts a new causal chain at `sender`
    /// (an output of an external event or timer firing).
    pub fn chain_start(
        sender: NodeId,
        group: u64,
        origin_seq: u64,
        link_est: u64,
        emit: u32,
    ) -> Self {
        Annotation {
            group,
            chain: 1,
            class: EventClass::Message,
            delay: link_est,
            origin: sender,
            origin_seq,
            sender,
            emit,
            lineage: mix(&[2, sender.0 as u64, group, origin_seq, emit as u64]),
        }
    }

    /// Annotation for a message generated while processing `parent` and sent
    /// by `sender` over a link with estimated delay `link_est`.
    ///
    /// The child inherits the origin identity and accumulates delay
    /// (`dᵢ = d_parent + l`, Fig. 1). When the chain bound is exceeded the
    /// child is pushed into the next group with a fresh chain (§2.2).
    pub fn child(
        parent: &Annotation,
        sender: NodeId,
        link_est: u64,
        emit: u32,
        chain_bound: u32,
    ) -> Self {
        // The handler that produced this send is identified by the parent's
        // lineage plus the node running the handler (a beacon tick with one
        // lineage is delivered at every node); `emit` separates siblings.
        let lineage = mix(&[3, parent.lineage, sender.0 as u64, emit as u64]);
        let chain = parent.chain + 1;
        if chain > chain_bound {
            Annotation {
                group: parent.group + 1,
                chain: 1,
                class: EventClass::Message,
                delay: link_est,
                origin: parent.origin,
                origin_seq: parent.origin_seq,
                sender,
                emit,
                lineage,
            }
        } else {
            Annotation {
                group: parent.group,
                chain,
                class: EventClass::Message,
                delay: parent.delay.saturating_add(link_est),
                origin: parent.origin,
                origin_seq: parent.origin_seq,
                sender,
                emit,
                lineage,
            }
        }
    }
}

/// FNV digest of a `Debug` rendering; the cheap deterministic payload digest
/// used in committed-log comparisons.
pub fn debug_digest<T: std::fmt::Debug>(t: &T) -> u64 {
    fnv1a(format!("{t:?}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(group: u64, chain: u32, delay: u64, origin: u32, seq: u64) -> Annotation {
        Annotation {
            group,
            chain,
            class: EventClass::Message,
            delay,
            origin: NodeId(origin),
            origin_seq: seq,
            sender: NodeId(9),
            emit: 0,
            lineage: 0,
        }
    }

    #[test]
    fn groups_dominate() {
        let a = msg(1, 5, 999, 7, 7).key(OrderingMode::Optimized);
        let b = msg(2, 0, 0, 0, 0).key(OrderingMode::Optimized);
        assert!(a < b);
    }

    #[test]
    fn chain_dominates_delay() {
        let a = msg(1, 1, 999, 0, 0).key(OrderingMode::Optimized);
        let b = msg(1, 2, 1, 0, 0).key(OrderingMode::Optimized);
        assert!(a < b);
    }

    #[test]
    fn paper_field_order_within_chain() {
        // Within a group and chain: delay, then origin, then seq (§2.2).
        let by_delay = msg(1, 1, 5, 9, 9).key(OrderingMode::Optimized)
            < msg(1, 1, 6, 0, 0).key(OrderingMode::Optimized);
        let by_origin = msg(1, 1, 5, 1, 9).key(OrderingMode::Optimized)
            < msg(1, 1, 5, 2, 0).key(OrderingMode::Optimized);
        let by_seq = msg(1, 1, 5, 1, 1).key(OrderingMode::Optimized)
            < msg(1, 1, 5, 1, 2).key(OrderingMode::Optimized);
        assert!(by_delay && by_origin && by_seq);
    }

    #[test]
    fn class_orders_externals_beacon_messages() {
        let e = Annotation::external(NodeId(3), 4, 0).key(OrderingMode::Optimized);
        let b = Annotation::beacon(NodeId(0), 4, 500).key(OrderingMode::Optimized);
        let m = msg(4, 1, 0, 0, 0).key(OrderingMode::Optimized);
        assert!(e < b, "external before beacon");
        assert!(b < m, "beacon before messages");
    }

    #[test]
    fn child_accumulates_delay_and_chain() {
        let p = Annotation::chain_start(NodeId(1), 7, 3, 100, 0);
        let c = Annotation::child(&p, NodeId(2), 50, 1, 24);
        assert_eq!(c.group, 7);
        assert_eq!(c.chain, 2);
        assert_eq!(c.delay, 150);
        assert_eq!(c.origin, NodeId(1));
        assert_eq!(c.origin_seq, 3);
        assert_eq!(c.sender, NodeId(2));
        assert_eq!(c.emit, 1);
        // Parent always sorts before child at any node (causal consistency).
        assert!(p.key(OrderingMode::Optimized) < c.key(OrderingMode::Optimized));
        assert!(p.key(OrderingMode::Random) < c.key(OrderingMode::Random));
    }

    #[test]
    fn chain_bound_pushes_to_next_group() {
        let p = msg(7, 24, 1000, 1, 3);
        let c = Annotation::child(&p, NodeId(2), 50, 0, 24);
        assert_eq!(c.group, 8);
        assert_eq!(c.chain, 1);
        assert_eq!(c.delay, 50, "delay resets with the fresh chain");
        assert_eq!(c.origin, NodeId(1), "causal identity preserved");
    }

    #[test]
    fn random_mode_permutes_but_respects_structure() {
        let a = msg(1, 1, 5, 1, 1);
        let b = msg(1, 1, 6, 1, 2);
        // Same keys on repeated computation (deterministic).
        assert_eq!(a.key(OrderingMode::Random), a.key(OrderingMode::Random));
        // Group/chain still dominate in random mode.
        let c = msg(2, 1, 0, 0, 0);
        assert!(a.key(OrderingMode::Random) < c.key(OrderingMode::Random));
        // The permutation differs from the optimised order for *some* pair;
        // check a small ensemble to avoid flakiness.
        let mut disagree = false;
        for s in 0..20u64 {
            let x = msg(1, 1, 10 + s, 1, s);
            let y = msg(1, 1, 11 + s, 2, s);
            let opt = x.key(OrderingMode::Optimized) < y.key(OrderingMode::Optimized);
            let rnd = x.key(OrderingMode::Random) < y.key(OrderingMode::Random);
            if opt != rnd {
                disagree = true;
                break;
            }
        }
        assert!(disagree, "random mode should reorder some pairs");
        let _ = (a, b);
    }

    #[test]
    fn sender_emit_break_ties() {
        let mut a = msg(1, 1, 5, 1, 1);
        let mut b = msg(1, 1, 5, 1, 1);
        a.sender = NodeId(2);
        b.sender = NodeId(3);
        assert!(a.key(OrderingMode::Optimized) < b.key(OrderingMode::Optimized));
        b.sender = NodeId(2);
        a.emit = 0;
        b.emit = 1;
        assert!(a.key(OrderingMode::Optimized) < b.key(OrderingMode::Optimized));
    }

    #[test]
    fn debug_digest_distinguishes() {
        assert_ne!(debug_digest(&(1, "a")), debug_digest(&(1, "b")));
        assert_eq!(debug_digest(&42u8), debug_digest(&42u8));
    }

    /// Two children of equal-delay flood copies that share every paper field
    /// must still be totally ordered: their lineages differ because their
    /// causal paths differ.
    #[test]
    fn lineage_separates_colliding_siblings() {
        let start = Annotation::external(NodeId(5), 1, 0);
        // Two distinct chain-1 messages (different emit slots) fan out...
        let via_a = Annotation::child(&start, NodeId(5), 4, 0, 24);
        let via_b = Annotation::child(&start, NodeId(5), 4, 1, 24);
        // ...travel equal-delay paths, and at chain 3 the *same* forwarder
        // emits from two different handler invocations at the same slot.
        let mid_a = Annotation::child(&via_a, NodeId(2), 4, 0, 24);
        let mid_b = Annotation::child(&via_b, NodeId(4), 4, 0, 24);
        let leaf_a = Annotation::child(&mid_a, NodeId(3), 4, 0, 24);
        let leaf_b = Annotation::child(&mid_b, NodeId(3), 4, 0, 24);
        // Every paper field collides...
        assert_eq!(
            (leaf_a.group, leaf_a.chain, leaf_a.delay, leaf_a.origin, leaf_a.origin_seq),
            (leaf_b.group, leaf_b.chain, leaf_b.delay, leaf_b.origin, leaf_b.origin_seq),
        );
        assert_eq!((leaf_a.sender, leaf_a.emit), (leaf_b.sender, leaf_b.emit));
        // ...but the keys still differ, deterministically.
        assert_ne!(leaf_a.key(OrderingMode::Optimized), leaf_b.key(OrderingMode::Optimized));
        assert_ne!(leaf_a.lineage, leaf_b.lineage);
    }

    #[test]
    fn lineage_is_deterministic() {
        let a = Annotation::external(NodeId(1), 2, 3);
        let b = Annotation::external(NodeId(1), 2, 3);
        assert_eq!(a, b);
        let ca = Annotation::child(&a, NodeId(4), 10, 1, 24);
        let cb = Annotation::child(&b, NodeId(4), 10, 1, 24);
        assert_eq!(ca, cb);
        assert_eq!(ca.key(OrderingMode::Optimized), cb.key(OrderingMode::Optimized));
    }

    #[test]
    fn annotation_round_trips() {
        for ann in [
            Annotation::external(NodeId(2), 5, 1),
            Annotation::beacon(NodeId(0), 9, 400),
            Annotation::child(&Annotation::external(NodeId(3), 7, 1), NodeId(2), 9, 4, 24),
        ] {
            let mut buf = Vec::new();
            ann.encode(&mut buf);
            let mut r = routing::enc::Reader::new(&buf);
            assert_eq!(Annotation::decode(&mut r), Some(ann));
            assert_eq!(r.remaining(), 0);
        }
        // A bad class byte fails cleanly.
        let mut bad = Vec::new();
        Annotation::external(NodeId(2), 5, 1).encode(&mut bad);
        bad[12] = 7;
        assert!(Annotation::decode(&mut routing::enc::Reader::new(&bad)).is_none());
    }

    #[test]
    fn order_key_round_trips_with_lineage() {
        let k = Annotation::child(&Annotation::external(NodeId(3), 7, 1), NodeId(2), 9, 4, 24)
            .key(OrderingMode::Optimized);
        let mut buf = Vec::new();
        k.encode(&mut buf);
        assert_eq!(buf.len(), 49);
        let mut r = routing::enc::Reader::new(&buf);
        assert_eq!(OrderKey::decode(&mut r), Some(k));
    }
}
