//! Partial recordings: the only state DEFINED needs to reproduce a
//! production execution (§2.1).
//!
//! A [`Recording`] holds the externally-visible nondeterminism: external
//! events tagged with the group numbers they received in production, plus
//! the committed send indexes of messages that were lost in flight (the
//! paper's footnote 4). Everything else — message orderings, timings, timer
//! firings — is regenerated deterministically by DEFINED-LS.

use crate::order::{Annotation, OrderKey};
use crate::wire::Wire;
use defined_obs as obs;
use netsim::NodeId;
use routing::enc::{put_u32, put_u64, Reader};

/// One recorded external event.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtRecord<X> {
    /// The node that received the input.
    pub node: NodeId,
    /// Per-node arrival index (0 is reserved for node startup).
    pub ext_seq: u64,
    /// The group the event was tagged with in production.
    pub group: u64,
    /// The payload.
    pub payload: X,
}

/// One committed message loss: the `idx`-th committed send of `sender`
/// never arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DropByIndex {
    /// Transmitting node.
    pub sender: NodeId,
    /// Index into the sender's committed send sequence.
    pub idx: u64,
}

/// The death cut of a node that crashed during the production run: exactly
/// the events it committed before dying. The replay delivers only these
/// keys at that node, then mutes it — crash timing is external
/// nondeterminism, so it belongs in the partial recording.
#[derive(Clone, Debug, PartialEq)]
pub struct MuteRecord {
    /// The crashed node.
    pub node: NodeId,
    /// Keys of the events it committed before the crash.
    pub allowed: Vec<OrderKey>,
}

/// One delivered beacon tick: `node` delivered the group-`group` tick
/// announced by `source`.
///
/// Which ticks a node delivers is a function of recorded *external*
/// nondeterminism — a node partitioned from the beacon source by a link
/// failure misses ticks and jumps forward on heal, and a source failover
/// changes the announcing node — so the tick schedule belongs in the partial
/// recording alongside the external events that caused it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TickRecord {
    /// The node that delivered the tick.
    pub node: NodeId,
    /// The group the tick opened.
    pub group: u64,
    /// The node whose beacon announced the group.
    pub source: NodeId,
}

/// A partial recording of a production run.
#[derive(Clone, Debug, PartialEq)]
pub struct Recording<X> {
    /// Number of nodes in the network.
    pub n_nodes: usize,
    /// The initially configured beacon source.
    pub source: NodeId,
    /// External events, sorted by `(group, node, ext_seq)`.
    pub externals: Vec<ExtRecord<X>>,
    /// Committed message losses.
    pub drops: Vec<DropByIndex>,
    /// Death cuts of crashed nodes.
    pub mutes: Vec<MuteRecord>,
    /// Beacon ticks each node delivered, sorted by `(group, node)`.
    pub ticks: Vec<TickRecord>,
    /// Highest group number the production run completed.
    pub last_group: u64,
}

impl<X: Clone> Recording<X> {
    /// External events belonging to `group`, in `(node, ext_seq)` order.
    pub fn externals_for_group(&self, group: u64) -> Vec<ExtRecord<X>> {
        let mut v: Vec<ExtRecord<X>> = self
            .externals
            .iter()
            .filter(|e| e.group == group)
            .cloned()
            .collect();
        v.sort_by_key(|e| (e.node, e.ext_seq));
        v
    }
}

impl<X: Wire> ExtRecord<X> {
    /// Appends the wire encoding of this record.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.node.0);
        put_u64(buf, self.ext_seq);
        put_u64(buf, self.group);
        self.payload.encode(buf);
    }

    /// Decodes one record, advancing the reader.
    pub fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(ExtRecord {
            node: NodeId(r.u32()?),
            ext_seq: r.u64()?,
            group: r.u64()?,
            payload: X::decode(r)?,
        })
    }
}

impl DropByIndex {
    /// Appends the wire encoding of this record.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.sender.0);
        put_u64(buf, self.idx);
    }

    /// Decodes one record, advancing the reader.
    pub fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(DropByIndex { sender: NodeId(r.u32()?), idx: r.u64()? })
    }
}

impl MuteRecord {
    /// Appends the wire encoding of this record.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.node.0);
        put_u64(buf, self.allowed.len() as u64);
        for k in &self.allowed {
            k.encode(buf);
        }
    }

    /// Decodes one record, advancing the reader.
    pub fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let node = NodeId(r.u32()?);
        let n_keys = r.len()?;
        let mut allowed = Vec::with_capacity(n_keys);
        for _ in 0..n_keys {
            allowed.push(OrderKey::decode(r)?);
        }
        Some(MuteRecord { node, allowed })
    }
}

impl TickRecord {
    /// Appends the wire encoding of this record.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.node.0);
        put_u64(buf, self.group);
        put_u32(buf, self.source.0);
    }

    /// Decodes one record, advancing the reader.
    pub fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(TickRecord { node: NodeId(r.u32()?), group: r.u64()?, source: NodeId(r.u32()?) })
    }
}

impl<X: Wire> Recording<X> {
    /// Serialises the recording.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        let start = buf.len();
        put_u64(&mut buf, self.n_nodes as u64);
        put_u32(&mut buf, self.source.0);
        put_u64(&mut buf, self.last_group);
        put_u64(&mut buf, self.externals.len() as u64);
        for e in &self.externals {
            e.encode(&mut buf);
        }
        put_u64(&mut buf, self.drops.len() as u64);
        for d in &self.drops {
            d.encode(&mut buf);
        }
        put_u64(&mut buf, self.mutes.len() as u64);
        for m in &self.mutes {
            m.encode(&mut buf);
        }
        put_u64(&mut buf, self.ticks.len() as u64);
        for t in &self.ticks {
            t.encode(&mut buf);
        }
        obs::counter!("wire.bytes_encoded").add((buf.len() - start) as u64);
        buf
    }

    /// Deserialises a recording, or `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        obs::counter!("wire.bytes_decoded").add(bytes.len() as u64);
        let mut r = Reader::new(bytes);
        let n_nodes = r.u64()? as usize;
        let source = NodeId(r.u32()?);
        let last_group = r.u64()?;
        let n_ext = r.len()?;
        let mut externals = Vec::with_capacity(n_ext);
        for _ in 0..n_ext {
            externals.push(ExtRecord::decode(&mut r)?);
        }
        let n_drops = r.len()?;
        let mut drops = Vec::with_capacity(n_drops);
        for _ in 0..n_drops {
            drops.push(DropByIndex::decode(&mut r)?);
        }
        let n_mutes = r.len()?;
        let mut mutes = Vec::with_capacity(n_mutes);
        for _ in 0..n_mutes {
            mutes.push(MuteRecord::decode(&mut r)?);
        }
        let n_ticks = r.len()?;
        let mut ticks = Vec::with_capacity(n_ticks);
        for _ in 0..n_ticks {
            ticks.push(TickRecord::decode(&mut r)?);
        }
        Some(Recording { n_nodes, source, externals, drops, mutes, ticks, last_group })
    }
}

/// One committed delivered event, used to compare executions across
/// RB-production, LS-replay, and threaded-LS runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// The event's order key (already incorporates group/chain/class).
    pub key: OrderKey,
    /// The full annotation.
    pub ann: Annotation,
    /// Digest of the payload (0 for beacon ticks).
    pub payload_digest: u64,
}

impl CommitRecord {
    /// Appends the wire encoding of this record.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        self.key.encode(buf);
        self.ann.encode(buf);
        put_u64(buf, self.payload_digest);
    }

    /// Decodes one record, advancing the reader.
    pub fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(CommitRecord {
            key: OrderKey::decode(r)?,
            ann: Annotation::decode(r)?,
            payload_digest: r.u64()?,
        })
    }
}

/// Trims a committed log to events in groups `<= last_group`, the window
/// over which two runs are comparable (later groups may still have had
/// messages in flight when the production run stopped).
pub fn trim_log(log: &[CommitRecord], last_group: u64) -> Vec<CommitRecord> {
    log.iter().filter(|r| r.ann.group <= last_group).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_round_trip() {
        let rec: Recording<u64> = Recording {
            n_nodes: 4,
            source: NodeId(0),
            externals: vec![
                ExtRecord { node: NodeId(2), ext_seq: 1, group: 3, payload: 42 },
                ExtRecord { node: NodeId(1), ext_seq: 1, group: 5, payload: 7 },
            ],
            drops: vec![DropByIndex { sender: NodeId(3), idx: 17 }],
            mutes: vec![MuteRecord {
                node: NodeId(1),
                allowed: vec![Annotation::external(NodeId(1), 1, 0)
                    .key(crate::config::OrderingMode::Optimized)],
            }],
            ticks: vec![
                TickRecord { node: NodeId(0), group: 1, source: NodeId(0) },
                TickRecord { node: NodeId(2), group: 1, source: NodeId(0) },
            ],
            last_group: 9,
        };
        let bytes = rec.to_bytes();
        assert_eq!(Recording::<u64>::from_bytes(&bytes), Some(rec));
        assert!(Recording::<u64>::from_bytes(&bytes[..5]).is_none());
    }

    #[test]
    fn externals_for_group_sorted() {
        let rec: Recording<u64> = Recording {
            n_nodes: 4,
            source: NodeId(0),
            externals: vec![
                ExtRecord { node: NodeId(3), ext_seq: 1, group: 2, payload: 1 },
                ExtRecord { node: NodeId(1), ext_seq: 2, group: 2, payload: 2 },
                ExtRecord { node: NodeId(1), ext_seq: 1, group: 2, payload: 3 },
                ExtRecord { node: NodeId(1), ext_seq: 1, group: 4, payload: 4 },
            ],
            drops: vec![],
            mutes: vec![],
            ticks: vec![],
            last_group: 5,
        };
        let g2 = rec.externals_for_group(2);
        assert_eq!(g2.len(), 3);
        assert_eq!(g2[0].payload, 3);
        assert_eq!(g2[1].payload, 2);
        assert_eq!(g2[2].payload, 1);
        assert!(rec.externals_for_group(3).is_empty());
    }

    #[test]
    fn trim_filters_late_groups() {
        use crate::config::OrderingMode;
        let mk = |group| {
            let ann = Annotation::external(NodeId(0), group, 1);
            CommitRecord { key: ann.key(OrderingMode::Optimized), ann, payload_digest: 0 }
        };
        let log = vec![mk(1), mk(2), mk(3)];
        assert_eq!(trim_log(&log, 2).len(), 2);
    }

    mod prop {
        //! Per-record-type codec round trips: each record that makes up a
        //! [`Recording`] must survive encode → decode verbatim, and a
        //! decoder must consume exactly the bytes its encoder produced —
        //! the invariant that keeps saved recordings loadable as the
        //! format grows new sections.

        use super::*;
        use proptest::prelude::*;
        use routing::enc::Reader;

        fn round_trip<T: PartialEq + std::fmt::Debug>(
            v: &T,
            enc: impl Fn(&T, &mut Vec<u8>),
            dec: impl Fn(&mut Reader<'_>) -> Option<T>,
        ) -> Result<(), TestCaseError> {
            let mut buf = Vec::new();
            enc(v, &mut buf);
            let mut r = Reader::new(&buf);
            let decoded = dec(&mut r);
            prop_assert_eq!(decoded.as_ref(), Some(v), "decode mismatch");
            prop_assert_eq!(r.remaining(), 0, "decoder must consume exactly what was encoded");
            Ok(())
        }

        fn order_key() -> impl Strategy<Value = OrderKey> {
            (0u32..64, 1u64..1000, 0u64..64, 0u32..8, 0u64..1_000_000).prop_map(
                |(node, group, seq, emit, link)| {
                    let root = Annotation::external(NodeId(node), group, seq);
                    Annotation::child(&root, NodeId(node ^ 1), link, emit, 24)
                        .key(crate::config::OrderingMode::Optimized)
                },
            )
        }

        proptest! {
            #[test]
            fn ext_record_round_trips(
                node in 0u32..256,
                ext_seq in proptest::arbitrary::any::<u64>(),
                group in proptest::arbitrary::any::<u64>(),
                payload in proptest::arbitrary::any::<u64>(),
            ) {
                let e = ExtRecord { node: NodeId(node), ext_seq, group, payload };
                round_trip(&e, ExtRecord::encode, ExtRecord::<u64>::decode)?;
            }

            #[test]
            fn drop_by_index_round_trips(
                sender in 0u32..256,
                idx in proptest::arbitrary::any::<u64>(),
            ) {
                let d = DropByIndex { sender: NodeId(sender), idx };
                round_trip(&d, DropByIndex::encode, DropByIndex::decode)?;
            }

            #[test]
            fn mute_record_round_trips(
                node in 0u32..256,
                allowed in proptest::collection::vec(order_key(), 0..12),
            ) {
                let m = MuteRecord { node: NodeId(node), allowed };
                round_trip(&m, MuteRecord::encode, MuteRecord::decode)?;
            }

            #[test]
            fn tick_record_round_trips(
                node in 0u32..256,
                group in proptest::arbitrary::any::<u64>(),
                source in 0u32..256,
            ) {
                let t = TickRecord { node: NodeId(node), group, source: NodeId(source) };
                round_trip(&t, TickRecord::encode, TickRecord::decode)?;
            }

            #[test]
            fn record_sequences_concatenate_cleanly(
                ticks in proptest::collection::vec(
                    (0u32..64, 0u64..1000, 0u32..64).prop_map(|(n, g, s)| TickRecord {
                        node: NodeId(n),
                        group: g,
                        source: NodeId(s),
                    }),
                    0..20,
                ),
            ) {
                // Self-delimiting: back-to-back records decode in order.
                let mut buf = Vec::new();
                for t in &ticks {
                    t.encode(&mut buf);
                }
                let mut r = Reader::new(&buf);
                for t in &ticks {
                    let decoded = TickRecord::decode(&mut r);
                    prop_assert_eq!(decoded.as_ref(), Some(t));
                }
                prop_assert_eq!(r.remaining(), 0);
            }
        }
    }
}
