//! Partial recordings: the only state DEFINED needs to reproduce a
//! production execution (§2.1).
//!
//! A [`Recording`] holds the externally-visible nondeterminism: external
//! events tagged with the group numbers they received in production, plus
//! the committed send indexes of messages that were lost in flight (the
//! paper's footnote 4). Everything else — message orderings, timings, timer
//! firings — is regenerated deterministically by DEFINED-LS.

use crate::order::{Annotation, OrderKey};
use crate::wire::Wire;
use netsim::NodeId;
use routing::enc::{put_u32, put_u64, Reader};

/// One recorded external event.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtRecord<X> {
    /// The node that received the input.
    pub node: NodeId,
    /// Per-node arrival index (0 is reserved for node startup).
    pub ext_seq: u64,
    /// The group the event was tagged with in production.
    pub group: u64,
    /// The payload.
    pub payload: X,
}

/// One committed message loss: the `idx`-th committed send of `sender`
/// never arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DropByIndex {
    /// Transmitting node.
    pub sender: NodeId,
    /// Index into the sender's committed send sequence.
    pub idx: u64,
}

/// The death cut of a node that crashed during the production run: exactly
/// the events it committed before dying. The replay delivers only these
/// keys at that node, then mutes it — crash timing is external
/// nondeterminism, so it belongs in the partial recording.
#[derive(Clone, Debug, PartialEq)]
pub struct MuteRecord {
    /// The crashed node.
    pub node: NodeId,
    /// Keys of the events it committed before the crash.
    pub allowed: Vec<OrderKey>,
}

/// One delivered beacon tick: `node` delivered the group-`group` tick
/// announced by `source`.
///
/// Which ticks a node delivers is a function of recorded *external*
/// nondeterminism — a node partitioned from the beacon source by a link
/// failure misses ticks and jumps forward on heal, and a source failover
/// changes the announcing node — so the tick schedule belongs in the partial
/// recording alongside the external events that caused it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TickRecord {
    /// The node that delivered the tick.
    pub node: NodeId,
    /// The group the tick opened.
    pub group: u64,
    /// The node whose beacon announced the group.
    pub source: NodeId,
}

/// A partial recording of a production run.
#[derive(Clone, Debug, PartialEq)]
pub struct Recording<X> {
    /// Number of nodes in the network.
    pub n_nodes: usize,
    /// The initially configured beacon source.
    pub source: NodeId,
    /// External events, sorted by `(group, node, ext_seq)`.
    pub externals: Vec<ExtRecord<X>>,
    /// Committed message losses.
    pub drops: Vec<DropByIndex>,
    /// Death cuts of crashed nodes.
    pub mutes: Vec<MuteRecord>,
    /// Beacon ticks each node delivered, sorted by `(group, node)`.
    pub ticks: Vec<TickRecord>,
    /// Highest group number the production run completed.
    pub last_group: u64,
}

impl<X: Clone> Recording<X> {
    /// External events belonging to `group`, in `(node, ext_seq)` order.
    pub fn externals_for_group(&self, group: u64) -> Vec<ExtRecord<X>> {
        let mut v: Vec<ExtRecord<X>> = self
            .externals
            .iter()
            .filter(|e| e.group == group)
            .cloned()
            .collect();
        v.sort_by_key(|e| (e.node, e.ext_seq));
        v
    }
}

impl<X: Wire> Recording<X> {
    /// Serialises the recording.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, self.n_nodes as u64);
        put_u32(&mut buf, self.source.0);
        put_u64(&mut buf, self.last_group);
        put_u64(&mut buf, self.externals.len() as u64);
        for e in &self.externals {
            put_u32(&mut buf, e.node.0);
            put_u64(&mut buf, e.ext_seq);
            put_u64(&mut buf, e.group);
            e.payload.encode(&mut buf);
        }
        put_u64(&mut buf, self.drops.len() as u64);
        for d in &self.drops {
            put_u32(&mut buf, d.sender.0);
            put_u64(&mut buf, d.idx);
        }
        put_u64(&mut buf, self.mutes.len() as u64);
        for m in &self.mutes {
            put_u32(&mut buf, m.node.0);
            put_u64(&mut buf, m.allowed.len() as u64);
            for k in &m.allowed {
                k.encode(&mut buf);
            }
        }
        put_u64(&mut buf, self.ticks.len() as u64);
        for t in &self.ticks {
            put_u32(&mut buf, t.node.0);
            put_u64(&mut buf, t.group);
            put_u32(&mut buf, t.source.0);
        }
        buf
    }

    /// Deserialises a recording, or `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let n_nodes = r.u64()? as usize;
        let source = NodeId(r.u32()?);
        let last_group = r.u64()?;
        let n_ext = r.len()?;
        let mut externals = Vec::with_capacity(n_ext);
        for _ in 0..n_ext {
            externals.push(ExtRecord {
                node: NodeId(r.u32()?),
                ext_seq: r.u64()?,
                group: r.u64()?,
                payload: X::decode(&mut r)?,
            });
        }
        let n_drops = r.len()?;
        let mut drops = Vec::with_capacity(n_drops);
        for _ in 0..n_drops {
            drops.push(DropByIndex { sender: NodeId(r.u32()?), idx: r.u64()? });
        }
        let n_mutes = r.len()?;
        let mut mutes = Vec::with_capacity(n_mutes);
        for _ in 0..n_mutes {
            let node = NodeId(r.u32()?);
            let n_keys = r.len()?;
            let mut allowed = Vec::with_capacity(n_keys);
            for _ in 0..n_keys {
                allowed.push(OrderKey::decode(&mut r)?);
            }
            mutes.push(MuteRecord { node, allowed });
        }
        let n_ticks = r.len()?;
        let mut ticks = Vec::with_capacity(n_ticks);
        for _ in 0..n_ticks {
            ticks.push(TickRecord {
                node: NodeId(r.u32()?),
                group: r.u64()?,
                source: NodeId(r.u32()?),
            });
        }
        Some(Recording { n_nodes, source, externals, drops, mutes, ticks, last_group })
    }
}

/// One committed delivered event, used to compare executions across
/// RB-production, LS-replay, and threaded-LS runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// The event's order key (already incorporates group/chain/class).
    pub key: OrderKey,
    /// The full annotation.
    pub ann: Annotation,
    /// Digest of the payload (0 for beacon ticks).
    pub payload_digest: u64,
}

/// Trims a committed log to events in groups `<= last_group`, the window
/// over which two runs are comparable (later groups may still have had
/// messages in flight when the production run stopped).
pub fn trim_log(log: &[CommitRecord], last_group: u64) -> Vec<CommitRecord> {
    log.iter().filter(|r| r.ann.group <= last_group).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_round_trip() {
        let rec: Recording<u64> = Recording {
            n_nodes: 4,
            source: NodeId(0),
            externals: vec![
                ExtRecord { node: NodeId(2), ext_seq: 1, group: 3, payload: 42 },
                ExtRecord { node: NodeId(1), ext_seq: 1, group: 5, payload: 7 },
            ],
            drops: vec![DropByIndex { sender: NodeId(3), idx: 17 }],
            mutes: vec![MuteRecord {
                node: NodeId(1),
                allowed: vec![Annotation::external(NodeId(1), 1, 0)
                    .key(crate::config::OrderingMode::Optimized)],
            }],
            ticks: vec![
                TickRecord { node: NodeId(0), group: 1, source: NodeId(0) },
                TickRecord { node: NodeId(2), group: 1, source: NodeId(0) },
            ],
            last_group: 9,
        };
        let bytes = rec.to_bytes();
        assert_eq!(Recording::<u64>::from_bytes(&bytes), Some(rec));
        assert!(Recording::<u64>::from_bytes(&bytes[..5]).is_none());
    }

    #[test]
    fn externals_for_group_sorted() {
        let rec: Recording<u64> = Recording {
            n_nodes: 4,
            source: NodeId(0),
            externals: vec![
                ExtRecord { node: NodeId(3), ext_seq: 1, group: 2, payload: 1 },
                ExtRecord { node: NodeId(1), ext_seq: 2, group: 2, payload: 2 },
                ExtRecord { node: NodeId(1), ext_seq: 1, group: 2, payload: 3 },
                ExtRecord { node: NodeId(1), ext_seq: 1, group: 4, payload: 4 },
            ],
            drops: vec![],
            mutes: vec![],
            ticks: vec![],
            last_group: 5,
        };
        let g2 = rec.externals_for_group(2);
        assert_eq!(g2.len(), 3);
        assert_eq!(g2[0].payload, 3);
        assert_eq!(g2[1].payload, 2);
        assert_eq!(g2[2].payload, 1);
        assert!(rec.externals_for_group(3).is_empty());
    }

    #[test]
    fn trim_filters_late_groups() {
        use crate::config::OrderingMode;
        let mk = |group| {
            let ann = Annotation::external(NodeId(0), group, 1);
            CommitRecord { key: ann.key(OrderingMode::Optimized), ann, payload_digest: 0 }
        };
        let log = vec![mk(1), mk(2), mk(3)];
        assert_eq!(trim_log(&log, 2).len(), 2);
    }
}
