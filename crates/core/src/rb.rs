//! DEFINED-RB: the production-network shim (paper §2.2, §3).
//!
//! [`RbShim`] wraps a [`ControlPlane`] and interposes on every message,
//! timer, and external input. Arrivals are delivered *speculatively* in
//! arrival order; each node independently computes the pseudorandom order
//! ([`crate::order`]) over its receive history, and when an arrival violates
//! that order the node rolls back — restoring a checkpoint, *unsending*
//! previously transmitted messages with anti-message control packets, and
//! replaying the history suffix in the correct order. Cascading rollbacks
//! terminate by the paper's Theorem 2 (group numbers are bounded below and
//! GVT advances).
//!
//! Virtual time: one node (the beacon source, elected on failure) floods a
//! beacon per 250 ms; a beacon's receipt is itself an ordered, rollback-able
//! history event whose delivery advances the node's group counter and fires
//! due protocol timers deterministically.

use crate::config::{CapturePolicy, DefinedConfig};
use crate::metrics::RbMetrics;
use defined_obs as obs;
use crate::order::{debug_digest, Annotation, MsgId, OrderKey};
use crate::recorder::CommitRecord;
use crate::snapshot::NodeSnapshot;
use checkpoint::{Checkpointer, Snapshotable};
use netsim::{NodeId, Process, ProcessCtx, SimDuration, SimTime, TimerId, TimerKey};
use routing::{ControlPlane, Outbox};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Real (simulator wall-clock) timers the shim itself uses.
const TK_BEACON: TimerKey = TimerKey(1);
const TK_GC: TimerKey = TimerKey(2);
const TK_WATCHDOG: TimerKey = TimerKey(3);
const TK_CLAIM: TimerKey = TimerKey(4);

/// The wire format of an instrumented network.
#[derive(Clone, Debug)]
pub enum Envelope<M> {
    /// An annotated application message.
    App {
        /// Unique message identity (for unsend matching).
        id: MsgId,
        /// Ordering annotation.
        ann: Annotation,
        /// The control-plane payload.
        payload: M,
    },
    /// A flooded group-number beacon.
    Beacon {
        /// Election epoch (increments when a new source takes over).
        epoch: u32,
        /// The beacon source.
        source: NodeId,
        /// Beacon number == the group it opens.
        number: u64,
    },
    /// An anti-message: the listed ids must be rolled back.
    Unsend {
        /// Message ids to retract.
        ids: Vec<MsgId>,
    },
}

/// Network-wide immutable context shared by every shim.
#[derive(Clone, Debug)]
pub struct RbShared {
    /// The run configuration.
    pub cfg: DefinedConfig,
    /// Node count.
    pub n: usize,
    /// `link_est[a]` maps neighbour → measured average delay (ns) of the
    /// `a → neighbour` link, measured before launch as §2.2 prescribes.
    pub link_est: Vec<BTreeMap<NodeId, u64>>,
    /// `dist[s][n]`: estimated shortest-path delay (ns) from `s` to `n`,
    /// used to annotate beacon ticks.
    pub dist: Vec<Vec<u64>>,
    /// The initially configured beacon source.
    pub initial_source: NodeId,
}

impl RbShared {
    fn link_est(&self, from: NodeId, to: NodeId) -> u64 {
        self.link_est[from.index()].get(&to).copied().unwrap_or(1)
    }
}

/// A deliverable local event.
#[derive(Clone, Debug)]
enum LocalEvent<M, X> {
    /// Node startup (`on_start`).
    Start,
    /// An external input.
    External(X),
    /// A beacon tick: advance virtual time, fire due timers.
    BeaconTick,
    /// An application message.
    Msg {
        from: NodeId,
        payload: M,
    },
}

#[derive(Clone, Debug)]
struct Entry<M, X> {
    key: OrderKey,
    ann: Annotation,
    /// Wire identity for messages (unsend matching).
    id: Option<MsgId>,
    ev: LocalEvent<M, X>,
    ckpt: Option<checkpoint::CheckpointId>,
    arrived: SimTime,
    /// Messages this entry's delivery transmitted (replaced on redelivery);
    /// exactly the set an unsend of this entry must retract.
    sends: Vec<SentRec>,
}

#[derive(Clone, Copy, Debug)]
struct SentRec {
    id: MsgId,
    to: NodeId,
    /// Annotation the message was sent with (lazy-cancellation matching).
    ann: Annotation,
    /// Payload digest (lazy-cancellation matching).
    digest: u64,
}

/// Sends retracted by a rollback, keyed by content identity. Replay consults
/// the pool before transmitting: a regenerated message identical in
/// destination, annotation, and payload *keeps* the original wire message
/// (Time-Warp lazy cancellation), so no anti-message and no re-send are
/// needed for it. Only the leftovers — sends the new execution did not
/// reproduce — are unsent. This is what keeps cascading rollbacks from
/// echoing identical traffic around the network.
type LazyPool = BTreeMap<(NodeId, Annotation, u64), Vec<MsgId>>;

/// A recorded external input (consumed by the harness to build a
/// [`crate::recorder::Recording`]).
#[derive(Clone, Debug)]
pub struct ExtLogEntry<X> {
    /// Arrival index at this node (0 = startup).
    pub ext_seq: u64,
    /// Group the event was tagged with.
    pub group: u64,
    /// Payload.
    pub payload: X,
}

/// Measured shape of one rollback episode (drives the Fig. 7a cost curves).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RollbackSample {
    /// Mean retained checkpoint image size at the time (bytes).
    pub state_bytes: usize,
    /// Dirty pages of the most recent checkpoint (MI strategy; 0 otherwise).
    pub dirty_pages: usize,
    /// History entries replayed.
    pub replayed: usize,
}

/// Measured shape of one checkpoint (drives the Fig. 7b cost curves).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointSample {
    /// Mean retained checkpoint image size at the time (bytes).
    pub state_bytes: usize,
    /// Dirty pages copied (MI strategy; full page count otherwise).
    pub dirty_pages: usize,
}

/// Cap on retained cost samples per node.
const SAMPLE_CAP: usize = 20_000;

/// The DEFINED-RB shim around one control plane.
pub struct RbShim<P: ControlPlane> {
    me: NodeId,
    shared: Arc<RbShared>,
    snap: NodeSnapshot<P>,
    history: Vec<Entry<P::Msg, P::Ext>>,
    committed: Vec<CommitRecord>,
    committed_max_key: Option<OrderKey>,
    committed_sends: Vec<MsgId>,
    ckpt: Checkpointer<NodeSnapshot<P>>,
    deliveries_since_ckpt: u32,
    /// Current effective capture interval (fixed for
    /// [`CapturePolicy::Every`]; moves within the configured bounds under
    /// [`CapturePolicy::Auto`]).
    capture_interval: u32,
    /// Deliveries since the last adaptation decision.
    adapt_window: u32,
    /// `metrics.rollbacks` at the last adaptation decision.
    adapt_rollbacks_base: u64,
    ext_seq: u64,
    ext_log: Vec<ExtLogEntry<P::Ext>>,
    send_seq: u64,
    incarnation: u32,
    /// Sends of the entry currently being delivered (moved into the entry).
    pending_sends: Vec<SentRec>,
    /// Retracted sends available for lazy-cancellation matching; `Some` only
    /// while replaying a rollback suffix.
    lazy_pool: Option<LazyPool>,
    /// Every message id ever received (duplicate-arrival guard).
    seen_ids: HashSet<MsgId>,
    poison: HashSet<MsgId>,
    started: bool,
    // Beaconing / election.
    max_beacon_seen: u64,
    /// Highest `(epoch, number)` flooded so far (relay dedup; lexicographic
    /// so a failover epoch propagates even when its numbers have not yet
    /// caught up with this node's `max_beacon_seen`).
    last_flood: (u32, u64),
    epoch: u32,
    known_source: NodeId,
    i_am_source: bool,
    last_beacon_wall: SimTime,
    watchdog: Option<TimerId>,
    pending_overhead: SimDuration,
    rollback_samples: Vec<RollbackSample>,
    ckpt_samples: Vec<CheckpointSample>,
    /// Overhead/rollback counters.
    pub metrics: RbMetrics,
}

impl<P: ControlPlane> RbShim<P> {
    /// Wraps `cp` for node `me` under the shared run context.
    pub fn new(me: NodeId, cp: P, shared: Arc<RbShared>) -> Self {
        let strategy = shared.cfg.strategy;
        let capture_interval = shared.cfg.capture.initial_interval();
        RbShim {
            me,
            shared,
            snap: NodeSnapshot::new(cp),
            history: Vec::new(),
            committed: Vec::new(),
            committed_max_key: None,
            committed_sends: Vec::new(),
            capture_interval,
            adapt_window: 0,
            adapt_rollbacks_base: 0,
            ckpt: Checkpointer::new(strategy),
            deliveries_since_ckpt: 0,
            ext_seq: 0,
            ext_log: Vec::new(),
            send_seq: 0,
            incarnation: 0,
            pending_sends: Vec::new(),
            lazy_pool: None,
            seen_ids: HashSet::new(),
            poison: HashSet::new(),
            started: false,
            max_beacon_seen: 0,
            last_flood: (0, 0),
            epoch: 0,
            known_source: NodeId(0),
            i_am_source: false,
            last_beacon_wall: SimTime::ZERO,
            watchdog: None,
            pending_overhead: SimDuration::ZERO,
            rollback_samples: Vec::new(),
            ckpt_samples: Vec::new(),
            metrics: RbMetrics::default(),
        }
    }

    /// Per-rollback shape samples collected so far.
    pub fn rollback_samples(&self) -> &[RollbackSample] {
        &self.rollback_samples
    }

    /// Per-checkpoint shape samples collected so far.
    pub fn checkpoint_samples(&self) -> &[CheckpointSample] {
        &self.ckpt_samples
    }

    /// The wrapped control plane (current speculative state).
    pub fn control_plane(&self) -> &P {
        &self.snap.cp
    }

    /// Current virtual-time group.
    pub fn current_group(&self) -> u64 {
        self.snap.current_group
    }

    /// Live (uncommitted) history length.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// The full delivered log: committed records followed by live entries.
    pub fn commit_records(&self) -> Vec<CommitRecord> {
        let mut out = self.committed.clone();
        out.extend(self.history.iter().map(|e| Self::record_of(e)));
        out
    }

    /// Recorded external inputs at this node.
    pub fn ext_log(&self) -> &[ExtLogEntry<P::Ext>] {
        &self.ext_log
    }

    /// Commits everything still live and returns the node's committed send
    /// sequence. Call once, after the run.
    pub fn finalize(&mut self) -> Vec<MsgId> {
        let n = self.history.len();
        self.commit_prefix(n);
        self.committed_sends.clone()
    }

    /// Checkpoint-store statistics (for memory-overhead figures).
    pub fn checkpoint_stats(&self) -> checkpoint::MemStats {
        self.ckpt.stats()
    }

    /// The group of this node's earliest *uncommitted* (still rollback-able)
    /// history entry, or the current group when nothing is live.
    ///
    /// The network-wide minimum of this value is a lower bound on the global
    /// virtual time (GVT) of Jefferson's Lemma 2: no node can ever again
    /// roll back below it.
    pub fn earliest_live_group(&self) -> u64 {
        self.history
            .first()
            .map(|e| e.key.group())
            .unwrap_or(self.snap.current_group)
    }

    /// Commits (and garbage-collects) every history entry in groups
    /// `<= group` — Jefferson-style fossil collection once GVT has passed
    /// `group`.
    ///
    /// Like the wall-clock horizon GC, the cut is clamped so the first
    /// retained entry still owns a checkpoint.
    pub fn commit_through_group(&mut self, group: u64) {
        let p = self.history.partition_point(|e| e.key.group() <= group);
        self.commit_prefix(p);
    }

    fn record_of(e: &Entry<P::Msg, P::Ext>) -> CommitRecord {
        let payload_digest = match &e.ev {
            LocalEvent::Start => 1,
            LocalEvent::BeaconTick => 0,
            LocalEvent::External(x) => debug_digest(x),
            LocalEvent::Msg { payload, .. } => debug_digest(payload),
        };
        CommitRecord { key: e.key, ann: e.ann, payload_digest }
    }

    // ------------------------------------------------------------------
    // Delivery machinery.
    // ------------------------------------------------------------------

    fn insert_arrival(
        &mut self,
        ctx: &mut ProcessCtx<'_, Envelope<P::Msg>>,
        ann: Annotation,
        id: Option<MsgId>,
        ev: LocalEvent<P::Msg, P::Ext>,
    ) {
        let key = ann.key(self.shared.cfg.ordering);
        let entry = Entry {
            key,
            ann,
            id,
            ev,
            ckpt: None,
            arrived: ctx.now(),
            sends: Vec::new(),
        };
        if let Some(cmk) = self.committed_max_key {
            if key <= cmk {
                // The commit horizon was too small: the entry this arrival
                // should precede is already garbage-collected. Deliver late
                // and record the violation (§2.2 sizes the horizon so this
                // never fires).
                self.metrics.window_violations += 1;
                self.deliver_at_end(ctx, entry);
                return;
            }
        }
        let pos = self.history.partition_point(|e| e.key <= key);
        if pos == self.history.len() {
            self.metrics.fast_path += 1;
            self.deliver_at_end(ctx, entry);
        } else {
            self.rollback_insert(ctx, pos, entry);
        }
        self.metrics.max_history = self.metrics.max_history.max(self.history.len());
    }

    /// Fast path: checkpoint (per granularity) and deliver at the end of the
    /// history.
    fn deliver_at_end(
        &mut self,
        ctx: &mut ProcessCtx<'_, Envelope<P::Msg>>,
        mut entry: Entry<P::Msg, P::Ext>,
    ) {
        let force = self.history.is_empty();
        self.maybe_checkpoint(&mut entry, force);
        self.deliver(ctx, &mut entry);
        self.history.push(entry);
    }

    /// Re-evaluates the adaptive capture interval once per
    /// [`CapturePolicy::ADAPT_WINDOW`] deliveries: a window that rolled
    /// back doubles the interval (churn makes per-commit captures the
    /// dominant cost), a quiet window shortens it by one delivery back
    /// toward cheap rollbacks. The decrease is additive on purpose — under
    /// sustained churn rollbacks land in only *some* windows, and a
    /// symmetric halving would give the interval back as fast as it was
    /// earned, pinning it near `min` exactly when captures dominate.
    /// Inputs are this node's own delivered history and rollback count —
    /// both replay identically, so the schedule is deterministic.
    fn adapt_capture_interval(&mut self) {
        let CapturePolicy::Auto { min, max } = self.shared.cfg.capture else {
            return;
        };
        if self.adapt_window < CapturePolicy::ADAPT_WINDOW {
            return;
        }
        self.adapt_window = 0;
        let rolled = self.metrics.rollbacks - self.adapt_rollbacks_base;
        self.adapt_rollbacks_base = self.metrics.rollbacks;
        let next = if rolled > 0 {
            self.capture_interval.saturating_mul(2).min(max.max(1))
        } else {
            (self.capture_interval - 1).max(min.max(1))
        };
        if next > self.capture_interval {
            obs::counter!("ckpt.adapt.widen").add(1);
        } else if next < self.capture_interval {
            obs::counter!("ckpt.adapt.narrow").add(1);
        }
        self.capture_interval = next;
        obs::hist!("ckpt.interval").record(self.capture_interval as u64);
    }

    fn maybe_checkpoint(&mut self, entry: &mut Entry<P::Msg, P::Ext>, force: bool) {
        self.adapt_capture_interval();
        let due = self.deliveries_since_ckpt.is_multiple_of(self.capture_interval.max(1));
        if force || due {
            let id = self.ckpt.checkpoint(&self.snap);
            entry.ckpt = Some(id);
            self.deliveries_since_ckpt = 0;
            let stats = self.ckpt.stats_fast();
            let bytes = stats.virtual_bytes / stats.retained.max(1);
            if self.ckpt_samples.len() < SAMPLE_CAP {
                self.ckpt_samples.push(CheckpointSample {
                    state_bytes: bytes,
                    dirty_pages: stats.last_dirty_pages,
                });
            }
            if self.shared.cfg.charge_overhead {
                let ns = match self.shared.cfg.strategy {
                    // MI copies only pool-fresh pages; already-pooled dirty
                    // pages are priced as dedup hits, matching what the
                    // store's `bytes_stored` records.
                    checkpoint::Strategy::MemIntercept => self.shared.cfg.cost.capture_ns(
                        self.shared.cfg.fork_timing,
                        stats.last_dirty_pages,
                        stats.last_fresh_pages,
                    ),
                    _ => self.shared.cfg.cost.checkpoint_ns(
                        self.shared.cfg.fork_timing,
                        bytes,
                        None,
                    ),
                };
                self.pending_overhead += SimDuration::from_nanos(ns);
                self.metrics.overhead_ns += ns;
            }
        }
        self.deliveries_since_ckpt += 1;
        self.adapt_window += 1;
    }

    /// Executes one entry against the control plane and transmits its
    /// outputs.
    fn deliver(
        &mut self,
        ctx: &mut ProcessCtx<'_, Envelope<P::Msg>>,
        entry: &mut Entry<P::Msg, P::Ext>,
    ) {
        let mut emit = 0u32;
        debug_assert!(self.pending_sends.is_empty());
        // Match by reference: events carry whole LSA/update payloads, and
        // this runs once per (re-)delivery — the clone was a hot-path
        // allocation for nothing.
        match &entry.ev {
            LocalEvent::Start => {
                let mut out = Outbox::new();
                self.snap.cp.on_start(&mut out);
                self.dispatch(ctx, &entry.ann, out, &mut emit);
            }
            LocalEvent::External(x) => {
                let mut out = Outbox::new();
                self.snap.cp.on_external(x, &mut out);
                self.dispatch(ctx, &entry.ann, out, &mut emit);
            }
            LocalEvent::Msg { from, payload } => {
                let mut out = Outbox::new();
                self.snap.cp.on_message(*from, payload, &mut out);
                self.dispatch(ctx, &entry.ann, out, &mut emit);
            }
            LocalEvent::BeaconTick => {
                self.snap.current_group = entry.ann.group;
                // Fire due timers until quiescent (a handler may arm a timer
                // due in the same group).
                loop {
                    let due = self.snap.take_due_timers(self.snap.current_group);
                    if due.is_empty() {
                        break;
                    }
                    for token in due {
                        let mut out = Outbox::new();
                        self.snap.cp.on_timer(token, &mut out);
                        self.dispatch(ctx, &entry.ann, out, &mut emit);
                    }
                }
            }
        }
        entry.sends = std::mem::take(&mut self.pending_sends);
        self.pending_overhead = SimDuration::ZERO;
    }

    /// Applies an outbox: timer ops onto the wheel, sends annotated and
    /// transmitted, everything logged for possible unsending.
    fn dispatch(
        &mut self,
        ctx: &mut ProcessCtx<'_, Envelope<P::Msg>>,
        parent: &Annotation,
        out: Outbox<P::Msg>,
        emit: &mut u32,
    ) {
        self.snap.apply_timer_ops(&out.arms, &out.cancels);
        let extra = if self.shared.cfg.charge_overhead {
            self.pending_overhead
        } else {
            SimDuration::ZERO
        };
        for (to, payload) in out.sends {
            let ann = Annotation::child(
                parent,
                self.me,
                self.shared.link_est(self.me, to),
                *emit,
                self.shared.cfg.chain_bound,
            );
            *emit += 1;
            let digest = debug_digest(&payload);
            if let Some(pool) = self.lazy_pool.as_mut() {
                if let Some(ids) = pool.get_mut(&(to, ann, digest)) {
                    if let Some(id) = ids.pop() {
                        // Lazy cancellation: the replay regenerated this
                        // message byte-identically, so the copy already on
                        // the wire (or delivered) stands. No re-send, no
                        // anti-message.
                        self.pending_sends.push(SentRec { id, to, ann, digest });
                        self.metrics.lazy_hits += 1;
                        continue;
                    }
                }
            }
            let id = MsgId { sender: self.me, incarnation: self.incarnation, seq: self.send_seq };
            self.send_seq += 1;
            self.pending_sends.push(SentRec { id, to, ann, digest });
            self.metrics.app_msgs_sent += 1;
            ctx.send_delayed(to, Envelope::App { id, ann, payload }, extra);
        }
    }

    /// Rolls back to the checkpoint covering `pos`, unsends invalidated
    /// messages, and replays the suffix (including `new_entry`) in key
    /// order. The replay goes through [`RbShim::redeliver_insert`], which
    /// can jump forward over the tail when the straggler proves to be a
    /// state no-op.
    fn rollback_insert(
        &mut self,
        ctx: &mut ProcessCtx<'_, Envelope<P::Msg>>,
        pos: usize,
        new_entry: Entry<P::Msg, P::Ext>,
    ) {
        let j = self.checkpoint_index_at_or_before(pos);
        self.metrics.rollbacks += 1;
        self.metrics.rolled_entries += (self.history.len() - j) as u64;
        // Stash the pre-rollback head state; if the straggler leaves the
        // replayed state byte-identical, this is exactly the state the
        // suffix replay would rebuild.
        let head = self.snap.clone();
        let restored = self.history[j].ckpt.expect("target has checkpoint");
        let inserted = new_entry.key;
        let pool = self.restore_keeping(j);
        let mut suffix = self.history.split_off(j);
        suffix.push(new_entry);
        suffix.sort_by_key(|a| a.key);
        self.redeliver_insert(ctx, suffix, pool, inserted, restored, head);
    }

    /// Handles an anti-message: removes the listed entries (or poisons
    /// not-yet-arrived ids) and replays from the earliest affected point.
    fn handle_unsend(&mut self, ctx: &mut ProcessCtx<'_, Envelope<P::Msg>>, ids: Vec<MsgId>) {
        let idset: HashSet<MsgId> = ids.into_iter().collect();
        let matched: Vec<usize> = self
            .history
            .iter()
            .enumerate()
            .filter(|(_, e)| e.id.map(|i| idset.contains(&i)).unwrap_or(false))
            .map(|(i, _)| i)
            .collect();
        let matched_ids: HashSet<MsgId> =
            matched.iter().map(|&i| self.history[i].id.unwrap()).collect();
        for id in idset.difference(&matched_ids) {
            self.poison.insert(*id);
        }
        let Some(&i_min) = matched.first() else { return };
        let j = self.checkpoint_index_at_or_before(i_min);
        self.metrics.rollbacks += 1;
        self.metrics.rolled_entries += (self.history.len() - j) as u64;
        let pool = self.restore_to(j);
        let suffix = self.history.split_off(j);
        let keep: Vec<Entry<P::Msg, P::Ext>> = suffix
            .into_iter()
            .filter(|e| e.id.map(|i| !matched_ids.contains(&i)).unwrap_or(true))
            .collect();
        self.redeliver(ctx, keep, pool);
    }

    fn checkpoint_index_at_or_before(&self, pos: usize) -> usize {
        let start = pos.min(self.history.len().saturating_sub(1));
        (0..=start)
            .rev()
            .find(|&i| self.history[i].ckpt.is_some())
            .expect("first live history entry always holds a checkpoint")
    }

    /// Restores the snapshot at history index `j` and pools every message
    /// previously sent by entries `j..` for lazy-cancellation matching
    /// during the replay, then invalidates every checkpoint at or after
    /// the restored-to one. Nothing is unsent here; [`RbShim::redeliver`]
    /// retracts only the sends the replay fails to regenerate.
    fn restore_to(&mut self, j: usize) -> LazyPool {
        let cid = self.history[j].ckpt.expect("target has checkpoint");
        let pool = self.restore_keeping(j);
        self.ckpt.truncate_from(cid);
        pool
    }

    /// [`RbShim::restore_to`] minus the checkpoint invalidation: an
    /// insert-rollback's replay reproduces states byte-for-byte until it
    /// reaches the straggler, so the existing images stay valid and
    /// [`RbShim::redeliver_insert`] truncates only once divergence is
    /// proven.
    fn restore_keeping(&mut self, j: usize) -> LazyPool {
        let cid = self.history[j].ckpt.expect("target has checkpoint");
        self.snap = self.ckpt.restore(cid).expect("checkpoint restorable");
        self.incarnation += 1;
        let mut pool = LazyPool::new();
        for e in &self.history[j..] {
            for rec in &e.sends {
                pool.entry((rec.to, rec.ann, rec.digest)).or_default().push(rec.id);
            }
        }
        let stats = self.ckpt.stats_fast();
        let bytes = stats.virtual_bytes / stats.retained.max(1);
        let replayed = self.history.len() - j;
        if self.rollback_samples.len() < SAMPLE_CAP {
            self.rollback_samples.push(RollbackSample {
                state_bytes: bytes,
                dirty_pages: stats.last_dirty_pages,
                replayed,
            });
        }
        if self.shared.cfg.charge_overhead {
            let dirty = match self.shared.cfg.strategy {
                checkpoint::Strategy::MemIntercept => Some(stats.last_dirty_pages.max(1)),
                _ => None,
            };
            let ns = self.shared.cfg.cost.rollback_ns(bytes, dirty, replayed, 20_000);
            self.pending_overhead += SimDuration::from_nanos(ns);
            self.metrics.overhead_ns += ns;
        }
        pool
    }

    /// Replays `entries` (already key-sorted) from the restored state,
    /// matching regenerated sends against `pool` (lazy cancellation), then
    /// unsends whatever the replay did not reproduce.
    fn redeliver(
        &mut self,
        ctx: &mut ProcessCtx<'_, Envelope<P::Msg>>,
        entries: Vec<Entry<P::Msg, P::Ext>>,
        pool: LazyPool,
    ) {
        let _span = obs::span!("rb.redeliver");
        self.lazy_pool = Some(pool);
        for (i, mut e) in entries.into_iter().enumerate() {
            e.ckpt = None;
            self.maybe_checkpoint(&mut e, i == 0);
            self.deliver(ctx, &mut e);
            self.history.push(e);
        }
        self.unsend_leftovers(ctx);
    }

    /// [`RbShim::redeliver`] specialised for straggler inserts, adding the
    /// Time-Warp "jump forward" optimisation (lazy re-evaluation).
    ///
    /// The replay of the prefix — the entries between the restored-to
    /// checkpoint and the straggler — has unchanged inputs, so determinism
    /// reproduces every state and send exactly: the entries keep their
    /// live checkpoint references (the restore did not truncate) and no
    /// re-capture happens. The straggler is then delivered bracketed by
    /// state probes. If it left the state byte-identical — duplicate
    /// floods and stale acks usually do — every later entry would replay
    /// to exactly its previous result, so the stashed head state is
    /// reinstated and the tail spliced back, checkpoints and all, without
    /// re-execution. Only on proven divergence are the tail's images
    /// dropped and its entries re-executed. The decision depends only on
    /// node-local replayed state, so it is identical across seeds, shard
    /// counts, and farm job counts.
    fn redeliver_insert(
        &mut self,
        ctx: &mut ProcessCtx<'_, Envelope<P::Msg>>,
        mut entries: Vec<Entry<P::Msg, P::Ext>>,
        pool: LazyPool,
        inserted: OrderKey,
        restored: checkpoint::CheckpointId,
        head: NodeSnapshot<P>,
    ) {
        let k = entries
            .iter()
            .position(|e| e.key == inserted)
            .expect("inserted entry is in the suffix");
        if k == 0 {
            // The straggler sorted ahead of the restored-to entry, so even
            // that entry now replays from a changed state: no image can be
            // kept. Invalidate them all and take the plain replay path.
            self.ckpt.truncate_from(restored);
            return self.redeliver(ctx, entries, pool);
        }
        let _span = obs::span!("rb.redeliver");
        let tail = entries.split_off(k + 1);
        let mut straggler = entries.pop().expect("prefix ends with the straggler");
        self.lazy_pool = Some(pool);
        // Phase 1 — the prefix: unchanged inputs, reproduced exactly; all
        // sends land as lazy-pool hits and checkpoint refs stay live.
        for mut e in entries {
            self.deliver(ctx, &mut e);
            self.history.push(e);
        }
        // Phase 2 — the straggler, bracketed by state probes (skipped when
        // there is no tail to jump over).
        straggler.ckpt = None;
        let probe = !tail.is_empty();
        let mut pre = Vec::new();
        if probe {
            self.snap.encode(&mut pre);
        }
        self.deliver(ctx, &mut straggler);
        self.history.push(straggler);
        if probe {
            let mut post = Vec::new();
            self.snap.encode(&mut post);
            if pre == post {
                // Jump forward: reinstate the head state and splice the
                // tail back untouched. Every pool leftover is a tail send
                // that stands as transmitted — nothing to unsend. (The
                // straggler cannot have matched a tail send in the pool:
                // annotations embed the parent entry's identity.)
                self.metrics.jumps += 1;
                self.metrics.jumped_entries += tail.len() as u64;
                obs::counter!("rb.jump").add(1);
                self.snap = head;
                self.history.extend(tail);
                self.lazy_pool = None;
                return;
            }
        }
        // Phase 3 — divergence: every image captured at or after the
        // straggler's position is stale. Drop them (the earliest parks as
        // the next capture's diff base) and replay the tail with captures
        // back on the normal cadence. A live checkpoint still exists below
        // the straggler (the prefix starts with one), so no forced
        // capture is needed.
        if let Some(dead) = tail.iter().find_map(|e| e.ckpt) {
            self.ckpt.truncate_from(dead);
        }
        for mut e in tail {
            e.ckpt = None;
            self.maybe_checkpoint(&mut e, false);
            self.deliver(ctx, &mut e);
            self.history.push(e);
        }
        self.unsend_leftovers(ctx);
    }

    /// Retracts the pooled sends the replay did not regenerate.
    fn unsend_leftovers(&mut self, ctx: &mut ProcessCtx<'_, Envelope<P::Msg>>) {
        let leftover = self.lazy_pool.take().expect("pool installed above");
        let mut per_peer: BTreeMap<NodeId, Vec<MsgId>> = BTreeMap::new();
        for ((to, _, _), ids) in leftover {
            per_peer.entry(to).or_default().extend(ids);
        }
        for (to, mut ids) in per_peer {
            if ids.is_empty() {
                continue;
            }
            ids.sort_unstable();
            self.metrics.unsend_msgs += 1;
            self.metrics.unsent_ids += ids.len() as u64;
            ctx.send_control(to, Envelope::Unsend { ids });
        }
    }

    /// Commits the first `p` history entries (after clamping `p` so the
    /// first retained entry still owns a checkpoint).
    fn commit_prefix(&mut self, p: usize) {
        let mut p = p.min(self.history.len());
        while p < self.history.len() && self.history[p].ckpt.is_none() {
            p -= 1;
            if p == 0 {
                return;
            }
        }
        if p == 0 {
            return;
        }
        for e in self.history.drain(..p) {
            self.committed_max_key = Some(e.key);
            self.committed.push(Self::record_of(&e));
            self.committed_sends.extend(e.sends.iter().map(|rec| rec.id));
        }
        if let Some(first) = self.history.first() {
            self.ckpt.release_before(first.ckpt.expect("clamped to checkpointed entry"));
        }
    }

    fn run_gc(&mut self, now: SimTime) {
        let Some(h) = self.shared.cfg.commit_horizon else { return };
        let p = self
            .history
            .iter()
            .position(|e| e.arrived + h > now)
            .unwrap_or(self.history.len());
        self.commit_prefix(p);
    }

    // ------------------------------------------------------------------
    // Beacons and election.
    // ------------------------------------------------------------------

    fn emit_beacon(&mut self, ctx: &mut ProcessCtx<'_, Envelope<P::Msg>>) {
        let number = self.max_beacon_seen.max(self.snap.current_group) + 1;
        self.max_beacon_seen = number;
        self.last_flood = self.last_flood.max((self.epoch, number));
        self.last_beacon_wall = ctx.now();
        for nb in ctx.neighbors().to_vec() {
            ctx.send_control(nb, Envelope::Beacon { epoch: self.epoch, source: self.me, number });
        }
        self.deliver_start_if_pending(ctx, number);
        let ann = Annotation::beacon(self.me, number, 0);
        self.insert_arrival(ctx, ann, None, LocalEvent::BeaconTick);
    }

    /// Startup is deferred until the group is known (first beacon), so a
    /// node restarted mid-run tags its boot outputs with the live group
    /// rather than group 1.
    fn deliver_start_if_pending(
        &mut self,
        ctx: &mut ProcessCtx<'_, Envelope<P::Msg>>,
        group: u64,
    ) {
        if self.started {
            return;
        }
        self.started = true;
        let ann = Annotation::external(self.me, group, 0);
        self.ext_seq = 1;
        self.insert_arrival(ctx, ann, None, LocalEvent::Start);
    }

    fn on_beacon(
        &mut self,
        ctx: &mut ProcessCtx<'_, Envelope<P::Msg>>,
        from: NodeId,
        epoch: u32,
        source: NodeId,
        number: u64,
    ) {
        // Election acceptance: a higher epoch always wins; within an epoch,
        // the lower node id wins.
        if epoch > self.epoch {
            self.epoch = epoch;
            self.known_source = source;
            if self.i_am_source && source != self.me {
                self.i_am_source = false;
            }
        } else if epoch < self.epoch {
            return;
        } else if source != self.known_source {
            if source < self.known_source {
                self.known_source = source;
                if self.i_am_source && source != self.me {
                    self.i_am_source = false;
                }
            } else {
                return;
            }
        }
        // Flood dedup by (epoch, number): a failover epoch must be relayed
        // even while its numbering trails this node's max (a healed
        // partition), or the election would never propagate.
        if (epoch, number) <= self.last_flood {
            return;
        }
        self.last_flood = (epoch, number);
        self.last_beacon_wall = ctx.now();
        // Re-arm the watchdog.
        if let Some(w) = self.watchdog.take() {
            ctx.cancel_timer(w);
        }
        let wd = ctx.set_timer(self.shared.cfg.beacon_interval * 4, TK_WATCHDOG);
        self.watchdog = Some(wd);
        // Relay the flood.
        for nb in ctx.neighbors().to_vec() {
            if nb != from {
                self.metrics.beacon_relays += 1;
                ctx.send_control(nb, Envelope::Beacon { epoch: self.epoch, source, number });
            }
        }
        // Deliver a tick only for strictly increasing numbers: groups are
        // virtual time and never run backwards.
        if number <= self.max_beacon_seen {
            return;
        }
        self.max_beacon_seen = number;
        self.deliver_start_if_pending(ctx, number);
        let ann = Annotation::beacon(source, number, self.shared.dist[source.index()][self.me.index()]);
        self.insert_arrival(ctx, ann, None, LocalEvent::BeaconTick);
    }
}

impl<P: ControlPlane> Process for RbShim<P> {
    type Msg = Envelope<P::Msg>;
    type Ext = P::Ext;

    fn on_start(&mut self, ctx: &mut ProcessCtx<'_, Envelope<P::Msg>>) {
        self.known_source = self.shared.initial_source;
        if self.me == self.shared.initial_source && ctx.now() == SimTime::ZERO {
            self.i_am_source = true;
            ctx.set_timer(self.shared.cfg.beacon_interval, TK_BEACON);
        } else {
            let wd = ctx.set_timer(self.shared.cfg.beacon_interval * 4, TK_WATCHDOG);
            self.watchdog = Some(wd);
        }
        if let Some(h) = self.shared.cfg.commit_horizon {
            ctx.set_timer(h, TK_GC);
        }
        // At cold boot (t = 0) the first group is known to be 1, so start
        // immediately; restarted nodes wait for a beacon.
        if ctx.now() == SimTime::ZERO {
            self.deliver_start_if_pending(ctx, 1);
        }
    }

    fn on_message(&mut self, ctx: &mut ProcessCtx<'_, Envelope<P::Msg>>, from: NodeId, msg: Envelope<P::Msg>) {
        match msg {
            Envelope::App { id, ann, payload } => {
                if self.poison.remove(&id) {
                    self.metrics.poisoned += 1;
                    return;
                }
                if !self.seen_ids.insert(id) {
                    return; // Duplicate arrival.
                }
                self.insert_arrival(ctx, ann, Some(id), LocalEvent::Msg { from, payload });
            }
            Envelope::Beacon { epoch, source, number } => {
                self.on_beacon(ctx, from, epoch, source, number);
            }
            Envelope::Unsend { ids } => {
                self.handle_unsend(ctx, ids);
            }
        }
    }

    fn on_external(&mut self, ctx: &mut ProcessCtx<'_, Envelope<P::Msg>>, ev: P::Ext) {
        let group = self.snap.current_group + 1;
        let seq = self.ext_seq;
        self.ext_seq += 1;
        self.ext_log.push(ExtLogEntry { ext_seq: seq, group, payload: ev.clone() });
        let ann = Annotation::external(self.me, group, seq);
        self.insert_arrival(ctx, ann, None, LocalEvent::External(ev));
    }

    fn on_timer(&mut self, ctx: &mut ProcessCtx<'_, Envelope<P::Msg>>, _id: TimerId, key: TimerKey) {
        match key {
            TK_BEACON
                if self.i_am_source => {
                    self.emit_beacon(ctx);
                    ctx.set_timer(self.shared.cfg.beacon_interval, TK_BEACON);
                }
            TK_GC => {
                self.run_gc(ctx.now());
                if let Some(h) = self.shared.cfg.commit_horizon {
                    ctx.set_timer(h, TK_GC);
                }
            }
            TK_WATCHDOG => {
                // Beacons stopped: back off proportionally to our id, then
                // claim the source role if silence persists (deterministic
                // preference for low ids).
                self.watchdog = None;
                if !self.i_am_source {
                    ctx.set_timer(
                        self.shared.cfg.beacon_interval * (self.me.0 as u64 + 1),
                        TK_CLAIM,
                    );
                }
            }
            TK_CLAIM => {
                let silence = ctx.now().saturating_sub(self.last_beacon_wall);
                if silence >= self.shared.cfg.beacon_interval * 4 && !self.i_am_source {
                    self.epoch += 1;
                    self.i_am_source = true;
                    self.known_source = self.me;
                    // Virtual time advances at the configured beacon rate
                    // (§3): estimate the ticks missed during the silence so
                    // the new numbering stays wall-aligned with any other
                    // partition. Otherwise a healed network stalls while the
                    // failover numbering catches up with the old one.
                    let interval = self.shared.cfg.beacon_interval.0.max(1);
                    let missed = (silence.0 / interval).saturating_sub(1);
                    self.max_beacon_seen += missed;
                    self.emit_beacon(ctx);
                    ctx.set_timer(self.shared.cfg.beacon_interval, TK_BEACON);
                }
            }
            _ => {}
        }
    }
}
