//! A thread-local pool of reusable byte buffers for the capture hot path.
//!
//! Every RB/LS capture serialises per-node state (event queues, LSA
//! databases) through temporary `Vec<u8>` scratch buffers, and every restore
//! re-encodes a probe to find the control-plane split. At fig8 scale those
//! were millions of short-lived allocations; pooling them makes the
//! serialisation cost proportional to bytes moved, not captures taken.
//! Buffers never cross threads, so sharded replay determinism is untouched.

use std::cell::RefCell;

/// Buffers retained per thread.
const POOL_CAP: usize = 8;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a cleared scratch buffer borrowed from the thread-local
/// pool. Nested calls get distinct buffers.
pub fn with_buf<R>(f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    let out = f(&mut buf);
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < POOL_CAP {
            p.push(buf);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused_and_cleared() {
        let ptr = with_buf(|b| {
            b.extend_from_slice(b"hello");
            b.as_ptr() as usize
        });
        with_buf(|b| {
            assert!(b.is_empty(), "pooled buffer must come back cleared");
            assert_eq!(b.as_ptr() as usize, ptr, "same allocation reused");
        });
    }

    #[test]
    fn nested_borrows_get_distinct_buffers() {
        with_buf(|outer| {
            outer.push(1);
            with_buf(|inner| {
                inner.push(2);
                assert_ne!(outer.as_ptr(), inner.as_ptr());
            });
            assert_eq!(outer.as_slice(), &[1]);
        });
    }
}
